#pragma once
/// \file stream.hpp
/// Simulated streams and events (cudaStream_t / cudaEvent_t analogues).
///
/// A Stream is a handle onto one of a Device's engine clocks (compute or
/// DMA). Work enqueued on a stream serializes on that engine; wait(event)
/// models cudaStreamWaitEvent by pushing the engine clock forward to the
/// event's completion time, and record() captures the engine's current
/// simulated time as an Event. Because the substrate executes kernels
/// functionally on the host (data moves immediately; only *time* is
/// modeled), dependency edges reduce to these clock constraints -- the
/// host-side issue order already matches a valid dependency order, so a
/// pipeline expressed with streams/events is deterministic by construction.
///
/// Typical overlapped-pipeline shape:
///
///   Stream compute(dev);                 // SM engine
///   auto t = compute.launch(cfg, body);  // advances compute clock
///   Event done = compute.record();
///   auto r = xfer.copy_async(..., done); // DMA starts when kernel done
///   other_compute.wait(r.done);          // consumer waits on the copy

#include "mgs/sim/timeline.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/simt/launch.hpp"

namespace mgs::simt {

/// Completion marker in simulated time. A default-constructed Event is
/// "already complete" (time 0), so it can be used as a no-op dependency.
struct Event {
  double seconds = 0.0;

  /// Later of two completion times (joining two dependency edges).
  static Event after(const Event& a, const Event& b) {
    return Event{a.seconds > b.seconds ? a.seconds : b.seconds};
  }
};

/// In-order work queue bound to one engine of one device.
class Stream {
 public:
  explicit Stream(Device& dev, sim::Engine engine = sim::Engine::kCompute)
      : dev_(&dev), engine_(engine) {}

  Device& device() const { return *dev_; }
  sim::Engine engine() const { return engine_; }
  sim::Clock& clock() { return dev_->engine_clock(engine_); }
  const sim::Clock& clock() const {
    return const_cast<Device*>(dev_)->engine_clock(engine_);
  }

  /// cudaStreamWaitEvent: subsequent work on this stream cannot start
  /// before the event completes.
  void wait(const Event& e) { clock().sync_to(e.seconds); }

  /// cudaEventRecord: capture this stream's current position.
  Event record() const { return Event{clock().now()}; }

  /// Enqueue a kernel (compute streams only); returns the kernel timing.
  /// Equivalent to simt::launch -- the device's compute clock *is* the
  /// compute stream's queue.
  template <typename Fn>
  sim::KernelTime launch(const LaunchConfig& cfg, Fn&& body) {
    MGS_CHECK(engine_ == sim::Engine::kCompute,
              "Stream::launch on a DMA stream");
    return simt::launch(*dev_, cfg, std::forward<Fn>(body));
  }

 private:
  Device* dev_;
  sim::Engine engine_;
};

}  // namespace mgs::simt
