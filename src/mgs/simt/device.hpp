#pragma once
/// \file device.hpp
/// Simulated GPU device and device-memory buffers.
///
/// A Device owns a simulated clock and an allocation budget; DeviceBuffer<T>
/// is host-backed storage tagged with its owning device. Kernels access
/// buffers through GlobalView<T>, whose accessors charge bytes and DRAM
/// transactions to the running block's KernelStats -- this is how coalescing
/// (int4 warp loads vs. scalar accesses) becomes visible to the cost model.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mgs/sim/cost_model.hpp"
#include "mgs/sim/device_spec.hpp"
#include "mgs/sim/timeline.hpp"
#include "mgs/simt/types.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/math.hpp"

namespace mgs::sim {
class FaultInjector;
}  // namespace mgs::sim

namespace mgs::simt {

class Device;

/// Instrumented view of device memory, passable into kernels by value.
/// All accessors are warp- or lane-granular and charge the right number of
/// 32-byte DRAM transactions:
///  - load4/store4: one lane touching 16 contiguous bytes;
///  - *_warp variants: 32 lanes touching contiguous memory (fully
///    coalesced, the fast path the paper's kernels use);
///  - load/store: an isolated scalar access (a whole transaction for
///    sizeof(T) useful bytes -- e.g. each block's auxiliary-array element).
template <typename T>
class GlobalView {
 public:
  GlobalView() = default;
  GlobalView(T* data, std::int64_t size, int device_id)
      : data_(data), size_(size), device_id_(device_id) {}

  std::int64_t size() const { return size_; }
  int device_id() const { return device_id_; }

  T load(std::int64_t i, sim::KernelStats& st) const {
    bounds(i);
    st.bytes_read += sizeof(T);
    st.mem_transactions += 1;
    return data_[i];
  }

  void store(std::int64_t i, T v, sim::KernelStats& st) const {
    bounds(i);
    st.bytes_written += sizeof(T);
    st.mem_transactions += 1;
    data_[i] = v;
  }

  /// One lane reads a 16-byte vector (CUDA int4 load).
  Vec4<T> load4(std::int64_t i, sim::KernelStats& st) const {
    bounds(i + 3);
    st.bytes_read += 4 * sizeof(T);
    st.mem_transactions += txn_count(4 * sizeof(T));
    return Vec4<T>{data_[i], data_[i + 1], data_[i + 2], data_[i + 3]};
  }

  void store4(std::int64_t i, const Vec4<T>& v, sim::KernelStats& st) const {
    bounds(i + 3);
    st.bytes_written += 4 * sizeof(T);
    st.mem_transactions += txn_count(4 * sizeof(T));
    data_[i] = v.x;
    data_[i + 1] = v.y;
    data_[i + 2] = v.z;
    data_[i + 3] = v.w;
  }

  /// A full warp reads 32 contiguous scalars starting at i0 (coalesced).
  WarpReg<T> load_warp(std::int64_t i0, sim::KernelStats& st) const {
    bounds(i0 + kWarpSize - 1);
    st.bytes_read += kWarpSize * sizeof(T);
    st.mem_transactions += txn_count(kWarpSize * sizeof(T));
    WarpReg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = data_[i0 + l];
    return r;
  }

  void store_warp(std::int64_t i0, const WarpReg<T>& r,
                  sim::KernelStats& st) const {
    bounds(i0 + kWarpSize - 1);
    st.bytes_written += kWarpSize * sizeof(T);
    st.mem_transactions += txn_count(kWarpSize * sizeof(T));
    for (int l = 0; l < kWarpSize; ++l) data_[i0 + l] = r[l];
  }

  /// A full warp reads 32 contiguous Vec4 (lane l gets elements
  /// i0 + 4*l .. i0 + 4*l + 3): 512 contiguous bytes, the paper's preferred
  /// access pattern ("each thread reads P elements ... using int4").
  WarpReg<Vec4<T>> load4_warp(std::int64_t i0, sim::KernelStats& st) const {
    bounds(i0 + 4 * kWarpSize - 1);
    st.bytes_read += 4 * kWarpSize * sizeof(T);
    st.mem_transactions += txn_count(4 * kWarpSize * sizeof(T));
    WarpReg<Vec4<T>> r;
    for (int l = 0; l < kWarpSize; ++l) {
      const std::int64_t base = i0 + 4 * static_cast<std::int64_t>(l);
      r[l] = Vec4<T>{data_[base], data_[base + 1], data_[base + 2],
                     data_[base + 3]};
    }
    return r;
  }

  void store4_warp(std::int64_t i0, const WarpReg<Vec4<T>>& r,
                   sim::KernelStats& st) const {
    bounds(i0 + 4 * kWarpSize - 1);
    st.bytes_written += 4 * kWarpSize * sizeof(T);
    st.mem_transactions += txn_count(4 * kWarpSize * sizeof(T));
    for (int l = 0; l < kWarpSize; ++l) {
      const std::int64_t base = i0 + 4 * static_cast<std::int64_t>(l);
      data_[base] = r[l].x;
      data_[base + 1] = r[l].y;
      data_[base + 2] = r[l].z;
      data_[base + 3] = r[l].w;
    }
  }

  /// Partial warp load: lanes [0, n) read contiguous scalars, remaining
  /// lanes receive `fill` (predicated tail handling for non-power-of-two N).
  WarpReg<T> load_warp_partial(std::int64_t i0, int n, T fill,
                               sim::KernelStats& st) const {
    MGS_CHECK(n >= 0 && n <= kWarpSize, "load_warp_partial: bad lane count");
    if (n > 0) bounds(i0 + n - 1);
    st.bytes_read += static_cast<std::uint64_t>(n) * sizeof(T);
    st.mem_transactions += txn_count(static_cast<std::uint64_t>(n) * sizeof(T));
    WarpReg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = (l < n) ? data_[i0 + l] : fill;
    return r;
  }

  void store_warp_partial(std::int64_t i0, int n, const WarpReg<T>& r,
                          sim::KernelStats& st) const {
    MGS_CHECK(n >= 0 && n <= kWarpSize, "store_warp_partial: bad lane count");
    if (n > 0) bounds(i0 + n - 1);
    st.bytes_written += static_cast<std::uint64_t>(n) * sizeof(T);
    st.mem_transactions += txn_count(static_cast<std::uint64_t>(n) * sizeof(T));
    for (int l = 0; l < n; ++l) data_[i0 + l] = r[l];
  }

  /// Atomic compare-and-set / load with device-memory cost accounting;
  /// used by the decoupled-look-back and chained-scan baselines.
  T atomic_load(std::int64_t i, sim::KernelStats& st) const {
    bounds(i);
    st.bytes_read += sizeof(T);
    st.mem_transactions += 1;
    return std::atomic_ref<T>(data_[i]).load(std::memory_order_acquire);
  }

  void atomic_store(std::int64_t i, T v, sim::KernelStats& st) const {
    bounds(i);
    st.bytes_written += sizeof(T);
    st.mem_transactions += 1;
    std::atomic_ref<T>(data_[i]).store(v, std::memory_order_release);
  }

  /// Uncharged atomic read, for spin-polling loops whose *modeled* cost is
  /// charged as a fixed constant (the host-side poll count depends on
  /// worker scheduling and would make modeled times nondeterministic).
  T atomic_peek(std::int64_t i) const {
    bounds(i);
    return std::atomic_ref<T>(data_[i]).load(std::memory_order_acquire);
  }

  T atomic_add(std::int64_t i, T v, sim::KernelStats& st) const {
    bounds(i);
    st.bytes_read += sizeof(T);
    st.bytes_written += sizeof(T);
    st.mem_transactions += 2;
    return std::atomic_ref<T>(data_[i]).fetch_add(v, std::memory_order_acq_rel);
  }

 private:
  void bounds(std::int64_t i) const {
    MGS_CHECK(i >= 0 && i < size_, "GlobalView access out of bounds");
  }
  std::uint64_t txn_count(std::uint64_t bytes) const {
    return util::div_up(bytes, 32);
  }

  T* data_ = nullptr;
  std::int64_t size_ = 0;
  int device_id_ = -1;
};

/// Host-backed device allocation. Copyable handle (shared ownership) so
/// proposals can pass buffers around like CUDA device pointers.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::int64_t size() const { return storage_ ? static_cast<std::int64_t>(storage_->size()) : 0; }
  int device_id() const { return device_id_; }
  bool valid() const { return storage_ != nullptr; }

  GlobalView<T> view() const {
    MGS_CHECK(valid(), "view() on empty DeviceBuffer");
    return GlobalView<T>(storage_->data(), size(), device_id_);
  }

  /// Direct host access for initialization, verification and transfers.
  /// (Corresponds to cudaMemcpy-to/from-host in a real system; the topo
  /// layer charges transfer costs where it matters.)
  std::span<T> host_span() {
    MGS_CHECK(valid(), "host_span() on empty DeviceBuffer");
    return {storage_->data(), storage_->size()};
  }
  std::span<const T> host_span() const {
    MGS_CHECK(valid(), "host_span() on empty DeviceBuffer");
    return {storage_->data(), storage_->size()};
  }

 private:
  friend class Device;
  DeviceBuffer(std::shared_ptr<std::vector<T>> storage, int device_id)
      : storage_(std::move(storage)), device_id_(device_id) {}

  std::shared_ptr<std::vector<T>> storage_;
  int device_id_ = -1;
};

/// One simulated GPU: spec + per-engine clocks + allocation tracking.
/// clock() is the compute (SM) engine; dma_clock() is the copy engine that
/// async transfers serialize on, so a copy and a kernel on the same device
/// can overlap in modeled time.
class Device {
 public:
  Device(int id, sim::DeviceSpec spec);

  int id() const { return id_; }
  const sim::DeviceSpec& spec() const { return spec_; }
  sim::Clock& clock() { return clock_; }
  const sim::Clock& clock() const { return clock_; }
  sim::Clock& dma_clock() { return dma_clock_; }
  const sim::Clock& dma_clock() const { return dma_clock_; }
  sim::Clock& engine_clock(sim::Engine e) {
    return e == sim::Engine::kDma ? dma_clock_ : clock_;
  }
  std::int64_t allocated_bytes() const { return allocated_bytes_; }

  /// Borrowed fault injector (set by Cluster::set_fault_injector so
  /// simt::launch can model compute stragglers); nullptr keeps kernel
  /// timing bit-identical to the pre-fault path.
  void set_fault_injector(const sim::FaultInjector* faults) {
    faults_ = faults;
  }
  const sim::FaultInjector* fault_injector() const { return faults_; }

  /// Allocate n elements of device memory; throws util::Error when the
  /// device's memory capacity would be exceeded (this is the condition
  /// that forces multi-GPU scattering for large N -- the paper's Case 2).
  /// Allocation accounting is RAII: the budget returns when the last
  /// DeviceBuffer handle drops. The Device must outlive its buffers.
  template <typename T>
  DeviceBuffer<T> alloc(std::int64_t n) {
    MGS_REQUIRE(n >= 0, "Device::alloc: negative size");
    const std::int64_t bytes = n * static_cast<std::int64_t>(sizeof(T));
    register_alloc(bytes);
    std::shared_ptr<std::vector<T>> storage(
        new std::vector<T>(static_cast<std::size_t>(n)),
        [this, bytes](std::vector<T>* p) {
          release_bytes(bytes);
          delete p;
        });
    return DeviceBuffer<T>(std::move(storage), id_);
  }

  /// Release accounting for a buffer about to be dropped. (Storage itself
  /// is shared_ptr-managed; this only returns budget.)
  void release_bytes(std::int64_t bytes);

 private:
  void register_alloc(std::int64_t bytes);

  int id_;
  sim::DeviceSpec spec_;
  sim::Clock clock_;      // compute (SM) engine
  sim::Clock dma_clock_;  // copy (DMA) engine
  std::int64_t allocated_bytes_ = 0;
  const sim::FaultInjector* faults_ = nullptr;
};

}  // namespace mgs::simt
