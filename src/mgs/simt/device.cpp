#include "mgs/simt/device.hpp"

namespace mgs::simt {

Device::Device(int id, sim::DeviceSpec spec) : id_(id), spec_(std::move(spec)) {
  MGS_REQUIRE(id >= 0, "Device id must be non-negative");
}

void Device::register_alloc(std::int64_t bytes) {
  MGS_REQUIRE(allocated_bytes_ + bytes <= spec_.memory_bytes,
              "device " + std::to_string(id_) + " out of memory: " +
                  std::to_string(allocated_bytes_ + bytes) + " > " +
                  std::to_string(spec_.memory_bytes) +
                  " bytes (problem needs multi-GPU scattering)");
  allocated_bytes_ += bytes;
}

void Device::release_bytes(std::int64_t bytes) {
  MGS_CHECK(bytes >= 0 && bytes <= allocated_bytes_,
            "release_bytes exceeds allocation");
  allocated_bytes_ -= bytes;
}

}  // namespace mgs::simt
