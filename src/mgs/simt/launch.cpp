#include "mgs/simt/launch.hpp"

#include "mgs/sim/occupancy.hpp"

namespace mgs::simt::detail {

void validate_launch(const Device& dev, const LaunchConfig& cfg) {
  MGS_REQUIRE(cfg.grid.count() > 0, "launch '" + cfg.name + "': empty grid");
  MGS_REQUIRE(cfg.block.count() > 0 &&
                  cfg.block.count() <= dev.spec().max_threads_per_block,
              "launch '" + cfg.name + "': bad block size");
  MGS_REQUIRE(cfg.smem_per_block >= 0 &&
                  cfg.smem_per_block <= dev.spec().shared_mem_per_block,
              "launch '" + cfg.name + "': shared memory exceeds device limit");
  MGS_REQUIRE(cfg.regs_per_thread > 0 &&
                  cfg.regs_per_thread <= dev.spec().max_regs_per_thread,
              "launch '" + cfg.name + "': registers per thread out of range");
  // Fail early (rather than inside the cost model) if the configuration
  // cannot be resident at all.
  (void)sim::occupancy(dev.spec(), static_cast<int>(cfg.block.count()),
                       cfg.regs_per_thread, cfg.smem_per_block);
}

}  // namespace mgs::simt::detail
