#pragma once
/// \file algorithms.hpp
/// Device-side utility kernels built on the launch API: fill, iota,
/// elementwise transform, gather/scatter and a tiled transpose. These are
/// the helpers applications need around a scan (the examples use them),
/// and each one is cost-accounted like any other kernel -- scatter/gather
/// charge scalar (uncoalesced) transactions, transpose stages through
/// shared memory for coalesced reads *and* writes.

#include <algorithm>

#include "mgs/simt/launch.hpp"

namespace mgs::simt {

namespace detail {
/// Grid-stride launch shape: one block per slab of `kSlab` elements.
inline constexpr std::int64_t kSlab = 4096;

inline LaunchConfig slab_config(const char* name, std::int64_t n) {
  LaunchConfig cfg;
  cfg.name = name;
  cfg.grid = {static_cast<int>(util::div_up(static_cast<std::uint64_t>(n),
                                            static_cast<std::uint64_t>(kSlab))),
              1, 1};
  cfg.block = {128, 1, 1};
  cfg.regs_per_thread = 20;
  return cfg;
}
}  // namespace detail

/// buf[i] = value for all i (cudaMemset generalization).
template <typename T>
sim::KernelTime fill(Device& dev, DeviceBuffer<T>& buf, T value) {
  const std::int64_t n = buf.size();
  MGS_REQUIRE(n > 0, "fill: empty buffer");
  const auto v = buf.view();
  return launch(dev, detail::slab_config("fill", n), [=](BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * detail::kSlab;
    const std::int64_t len = std::min<std::int64_t>(detail::kSlab, n - base);
    for (std::int64_t i = 0; i < len; i += kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(kWarpSize, len - i));
      WarpReg<T> r;
      r.fill(value);
      v.store_warp_partial(base + i, cnt, r, ctx.stats());
    }
  });
}

/// buf[i] = start + i.
template <typename T>
sim::KernelTime iota(Device& dev, DeviceBuffer<T>& buf, T start = T{}) {
  const std::int64_t n = buf.size();
  MGS_REQUIRE(n > 0, "iota: empty buffer");
  const auto v = buf.view();
  return launch(dev, detail::slab_config("iota", n), [=](BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * detail::kSlab;
    const std::int64_t len = std::min<std::int64_t>(detail::kSlab, n - base);
    for (std::int64_t i = 0; i < len; i += kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(kWarpSize, len - i));
      WarpReg<T> r{};
      for (int l = 0; l < cnt; ++l) {
        r[l] = static_cast<T>(start + static_cast<T>(base + i + l));
      }
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
      v.store_warp_partial(base + i, cnt, r, ctx.stats());
    }
  });
}

/// out[i] = fn(in[i]); fn must be a pure value function (it runs on every
/// simulated lane and is charged one lane-op per element).
template <typename T, typename U, typename Fn>
sim::KernelTime transform(Device& dev, const DeviceBuffer<T>& in,
                          DeviceBuffer<U>& out, Fn fn) {
  const std::int64_t n = in.size();
  MGS_REQUIRE(n > 0 && out.size() >= n, "transform: bad buffer sizes");
  const auto iv = in.view();
  const auto ov = out.view();
  return launch(dev, detail::slab_config("transform", n), [=](BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * detail::kSlab;
    const std::int64_t len = std::min<std::int64_t>(detail::kSlab, n - base);
    for (std::int64_t i = 0; i < len; i += kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(kWarpSize, len - i));
      const auto r = iv.load_warp_partial(base + i, cnt, T{}, ctx.stats());
      WarpReg<U> w{};
      for (int l = 0; l < cnt; ++l) w[l] = fn(r[l]);
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
      ov.store_warp_partial(base + i, cnt, w, ctx.stats());
    }
  });
}

/// dst[i] = src[idx[i]] -- data-dependent reads are scalar transactions.
template <typename T>
sim::KernelTime gather(Device& dev, const DeviceBuffer<T>& src,
                       const DeviceBuffer<std::int64_t>& idx,
                       DeviceBuffer<T>& dst) {
  const std::int64_t n = idx.size();
  MGS_REQUIRE(n > 0 && dst.size() >= n, "gather: bad buffer sizes");
  const auto sv = src.view();
  const auto iv = idx.view();
  const auto dv = dst.view();
  return launch(dev, detail::slab_config("gather", n), [=](BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * detail::kSlab;
    const std::int64_t len = std::min<std::int64_t>(detail::kSlab, n - base);
    for (std::int64_t i = 0; i < len; ++i) {
      const std::int64_t j = iv.load(base + i, ctx.stats());
      dv.store(base + i, sv.load(j, ctx.stats()), ctx.stats());
    }
  });
}

/// dst[idx[i]] = src[i] -- indices must be unique (checked only by the
/// bounds checks; duplicate targets are a data race in CUDA too).
template <typename T>
sim::KernelTime scatter(Device& dev, const DeviceBuffer<T>& src,
                        const DeviceBuffer<std::int64_t>& idx,
                        DeviceBuffer<T>& dst) {
  const std::int64_t n = idx.size();
  MGS_REQUIRE(n > 0 && src.size() >= n, "scatter: bad buffer sizes");
  const auto sv = src.view();
  const auto iv = idx.view();
  const auto dv = dst.view();
  return launch(dev, detail::slab_config("scatter", n), [=](BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * detail::kSlab;
    const std::int64_t len = std::min<std::int64_t>(detail::kSlab, n - base);
    for (std::int64_t i = 0; i < len; ++i) {
      const std::int64_t j = iv.load(base + i, ctx.stats());
      dv.store(j, sv.load(base + i, ctx.stats()), ctx.stats());
    }
  });
}

/// out[x*h + y] = in[y*w + x]: tiled through shared memory so both the
/// row reads and the column writes are coalesced (the standard CUDA
/// transpose; a 33-column tile avoids bank conflicts).
template <typename T>
sim::KernelTime transpose(Device& dev, const DeviceBuffer<T>& in,
                          DeviceBuffer<T>& out, std::int64_t w,
                          std::int64_t h) {
  MGS_REQUIRE(w > 0 && h > 0 && in.size() >= w * h && out.size() >= w * h,
              "transpose: bad shape");
  constexpr std::int64_t kTile = 32;
  LaunchConfig cfg;
  cfg.name = "transpose";
  cfg.grid = {static_cast<int>(util::div_up(static_cast<std::uint64_t>(w),
                                            static_cast<std::uint64_t>(kTile))),
              static_cast<int>(util::div_up(static_cast<std::uint64_t>(h),
                                            static_cast<std::uint64_t>(kTile))),
              1};
  cfg.block = {256, 1, 1};
  cfg.regs_per_thread = 24;
  cfg.smem_per_block =
      kTile * (kTile + 1) * static_cast<std::int64_t>(sizeof(T));
  const auto iv = in.view();
  const auto ov = out.view();
  return launch(dev, cfg, [=](BlockCtx& ctx) {
    const std::int64_t x0 =
        static_cast<std::int64_t>(ctx.block_idx().x) * kTile;
    const std::int64_t y0 =
        static_cast<std::int64_t>(ctx.block_idx().y) * kTile;
    auto tile = ctx.shared<T>(kTile * (kTile + 1));
    for (std::int64_t y = y0; y < std::min<std::int64_t>(y0 + kTile, h); ++y) {
      const int cnt = static_cast<int>(std::min<std::int64_t>(kTile, w - x0));
      const auto r = iv.load_warp_partial(y * w + x0, cnt, T{}, ctx.stats());
      for (int l = 0; l < cnt; ++l) {
        tile[static_cast<std::size_t>((y - y0) * (kTile + 1) + l)] = r[l];
      }
    }
    ctx.sync();
    for (std::int64_t x = x0; x < std::min<std::int64_t>(x0 + kTile, w); ++x) {
      const int cnt = static_cast<int>(std::min<std::int64_t>(kTile, h - y0));
      WarpReg<T> r{};
      for (int l = 0; l < cnt; ++l) {
        r[l] = tile[static_cast<std::size_t>(l * (kTile + 1) + (x - x0))];
      }
      ov.store_warp_partial(x * h + y0, cnt, r, ctx.stats());
    }
  });
}

}  // namespace mgs::simt
