#pragma once
/// \file types.hpp
/// CUDA-like primitive types for the simulated SIMT substrate.

#include <array>
#include <cstdint>

namespace mgs::simt {

/// Lanes per warp. Fixed at 32 like every CUDA architecture to date; the
/// paper's Figure 4 uses warpSize=4 only for illustration.
inline constexpr int kWarpSize = 32;

/// Launch shape (grid or block), CUDA dim3 equivalent. The paper uses
/// two-dimensional grids: x indexes within a problem, y indexes the batch.
struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  std::int64_t count() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// Four-element vector type (CUDA int4/float4). The paper's kernels read
/// global memory through int4 to coalesce 16-byte loads per lane.
template <typename T>
struct Vec4 {
  T x{}, y{}, z{}, w{};

  T& operator[](int i) { return (&x)[i]; }
  const T& operator[](int i) const { return (&x)[i]; }
  friend bool operator==(const Vec4&, const Vec4&) = default;
};

using Int4 = Vec4<std::int32_t>;
using Float4 = Vec4<float>;

/// Per-lane register file for one warp: value v[l] lives in lane l's
/// registers. CUDA warp-synchronous code maps 1:1 onto operations over
/// WarpReg (a __shfl becomes an indexed read of the source lane's slot).
template <typename T>
using WarpReg = std::array<T, kWarpSize>;

}  // namespace mgs::simt
