#pragma once
/// \file thread_pool.hpp
/// Fixed-size worker pool used to execute thread blocks functionally.
///
/// Blocks are dispatched strictly in ascending linear index: a worker
/// claims the next index from a shared counter, so block i never starts
/// before block i-1 has started. Kernels that spin-wait on lower-indexed
/// blocks (decoupled look-back, chained scan) therefore cannot deadlock at
/// any pool size -- the awaited block is either finished or running.

#include <cstdint>
#include <functional>

namespace mgs::simt {

class ThreadPool {
 public:
  /// Workers default to std::thread::hardware_concurrency().
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return workers_; }

  /// Run fn(i) for i in [0, n), claiming indices in ascending order.
  /// Blocks until all calls complete. fn must be thread-safe across
  /// distinct i. Exceptions in fn abort the process (kernels use
  /// MGS_CHECK, which already aborts with a diagnostic).
  void run_ordered(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Process-wide pool shared by all launches.
  static ThreadPool& instance();

 private:
  struct Impl;
  Impl* impl_;
  int workers_;
};

}  // namespace mgs::simt
