#pragma once
/// \file profiler.hpp
/// Optional global profiler for simulated runs. When enabled, every
/// kernel launch, transfer and MPI collective appends a record with its
/// simulated start time, duration and work counters. Records can be
/// aggregated into a per-name summary or exported as a Chrome-trace JSON
/// (load in chrome://tracing or Perfetto; one track per device/rank).
///
/// Disabled by default and costs one branch per event when off.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mgs::sim {

enum class EventKind { kKernel, kTransfer, kCollective };

const char* to_string(EventKind kind);

struct ProfileRecord {
  std::string name;
  EventKind kind = EventKind::kKernel;
  int device_id = -1;        ///< device (kernels/transfers: destination)
  double start_seconds = 0.0;  ///< simulated start time
  double duration_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t alu_ops = 0;
  double occupancy = 0.0;    ///< kernels only: warp occupancy used
};

/// Aggregated view of all records sharing a name.
struct ProfileSummaryRow {
  std::string name;
  std::size_t count = 0;
  double total_seconds = 0.0;
  std::uint64_t total_bytes = 0;
};

class Profiler {
 public:
  /// Process-wide instance used by the substrate layers.
  static Profiler& instance();

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Append a record (no-op when disabled). Thread-safe.
  void record(ProfileRecord rec);

  /// Copy of all records in insertion order.
  std::vector<ProfileRecord> records() const;
  std::size_t size() const;
  void clear();

  /// Per-name aggregation, ordered by descending total time.
  std::vector<ProfileSummaryRow> summary() const;

  /// Chrome-trace ("traceEvents") JSON: pid = device id, complete events
  /// with microsecond timestamps.
  void write_chrome_trace(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<ProfileRecord> records_;
  bool enabled_ = false;
};

/// RAII enable for tests and scoped profiling sessions. The constructor
/// saves the profiler's prior enabled state and the destructor restores
/// it, so nested scopes do not clobber an outer enable.
class ProfileScope {
 public:
  ProfileScope() : prev_(Profiler::instance().enabled()) {
    Profiler::instance().enable();
  }
  ~ProfileScope() {
    if (!prev_) Profiler::instance().disable();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool prev_ = false;
};

}  // namespace mgs::sim
