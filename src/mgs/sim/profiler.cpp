#include "mgs/sim/profiler.hpp"

#include <algorithm>
#include <map>

namespace mgs::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKernel:
      return "kernel";
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kCollective:
      return "collective";
  }
  return "?";
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(ProfileRecord rec) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(rec));
}

std::vector<ProfileRecord> Profiler::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t Profiler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::vector<ProfileSummaryRow> Profiler::summary() const {
  std::map<std::string, ProfileSummaryRow> by_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& r : records_) {
      auto& row = by_name[r.name];
      row.name = r.name;
      ++row.count;
      row.total_seconds += r.duration_seconds;
      row.total_bytes += r.bytes;
    }
  }
  std::vector<ProfileSummaryRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    (void)name;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.total_seconds > b.total_seconds;
  });
  return rows;
}

void Profiler::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& r : records_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << r.name << "\",\"cat\":\"" << to_string(r.kind)
       << "\",\"ph\":\"X\",\"pid\":" << r.device_id << ",\"tid\":0"
       << ",\"ts\":" << r.start_seconds * 1e6
       << ",\"dur\":" << r.duration_seconds * 1e6 << ",\"args\":{\"bytes\":"
       << r.bytes << ",\"alu_ops\":" << r.alu_ops
       << ",\"occupancy\":" << r.occupancy << "}}";
  }
  os << "]}";
}

}  // namespace mgs::sim
