#include "mgs/sim/occupancy.hpp"

#include <algorithm>

#include "mgs/util/check.hpp"
#include "mgs/util/math.hpp"

namespace mgs::sim {

const char* to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kBlocks:
      return "blocks/SM";
    case OccupancyLimiter::kWarps:
      return "warps/SM";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMem:
      return "shared memory";
  }
  return "?";
}

OccupancyResult occupancy(const DeviceSpec& spec, int threads_per_block,
                          int regs_per_thread, std::int64_t smem_per_block) {
  MGS_REQUIRE(threads_per_block > 0, "occupancy: threads_per_block must be > 0");
  MGS_REQUIRE(threads_per_block <= spec.max_threads_per_block,
              "occupancy: block exceeds max threads per block");
  MGS_REQUIRE(regs_per_thread > 0 && regs_per_thread <= spec.max_regs_per_thread,
              "occupancy: regs_per_thread out of range");
  MGS_REQUIRE(smem_per_block >= 0 && smem_per_block <= spec.shared_mem_per_block,
              "occupancy: smem_per_block exceeds per-block limit");

  const int warps_per_block = static_cast<int>(
      util::div_up(static_cast<std::uint64_t>(threads_per_block),
                   static_cast<std::uint64_t>(spec.warp_size)));

  // Registers are reserved per warp, rounded up to the allocation
  // granularity (Kepler allocates in 256-register chunks).
  const std::int64_t regs_per_warp = static_cast<std::int64_t>(util::round_up(
      static_cast<std::uint64_t>(regs_per_thread) * spec.warp_size,
      static_cast<std::uint64_t>(spec.reg_alloc_granularity)));
  const std::int64_t regs_per_block = regs_per_warp * warps_per_block;
  MGS_REQUIRE(regs_per_block <= spec.registers_per_sm,
              "occupancy: one block exceeds the SM register file");

  const int by_arch = spec.max_blocks_per_sm;
  const int by_warps = spec.max_warps_per_sm / warps_per_block;
  MGS_REQUIRE(by_warps >= 1, "occupancy: block has more warps than one SM");
  const int by_regs =
      static_cast<int>(spec.registers_per_sm / regs_per_block);
  const int by_smem =
      smem_per_block == 0
          ? by_arch
          : static_cast<int>(spec.shared_mem_per_sm / smem_per_block);
  MGS_REQUIRE(by_smem >= 1, "occupancy: one block exceeds SM shared memory");

  OccupancyResult result;
  result.blocks_per_sm = std::min({by_arch, by_warps, by_regs, by_smem});
  // Report the binding constraint; ties are resolved in the order the CUDA
  // occupancy calculator reports them (arch limit first, then warps, regs,
  // shared memory).
  if (result.blocks_per_sm == by_arch) {
    result.limiter = OccupancyLimiter::kBlocks;
  } else if (result.blocks_per_sm == by_warps) {
    result.limiter = OccupancyLimiter::kWarps;
  } else if (result.blocks_per_sm == by_regs) {
    result.limiter = OccupancyLimiter::kRegisters;
  } else {
    result.limiter = OccupancyLimiter::kSharedMem;
  }
  result.warps_per_sm = result.blocks_per_sm * warps_per_block;
  result.warp_occupancy =
      static_cast<double>(result.warps_per_sm) / spec.max_warps_per_sm;
  return result;
}

}  // namespace mgs::sim
