#pragma once
/// \file occupancy.hpp
/// CUDA-style occupancy calculator. This is the machinery behind the
/// paper's Table 3 and Premise 1: given a block shape and per-thread /
/// per-block resource usage, how many blocks and warps can be resident on
/// one SM, and what limits them.

#include <string>

#include "mgs/sim/device_spec.hpp"

namespace mgs::sim {

/// Which resource capped the number of resident blocks.
enum class OccupancyLimiter {
  kBlocks,      ///< the architectural max-blocks-per-SM limit
  kWarps,       ///< max warps per SM
  kRegisters,   ///< register file capacity
  kSharedMem,   ///< shared memory capacity
};

const char* to_string(OccupancyLimiter limiter);

struct OccupancyResult {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  /// warps_per_sm / max_warps_per_sm (the paper's "SM warp occupancy").
  double warp_occupancy = 0.0;
  OccupancyLimiter limiter = OccupancyLimiter::kBlocks;
};

/// Compute the resident-blocks/warps configuration for one SM.
///
/// \param threads_per_block  L in the paper (must be a multiple of warp_size
///                           or it is rounded up to whole warps).
/// \param regs_per_thread    registers each thread requires.
/// \param smem_per_block     bytes of shared memory per block (0 allowed).
///
/// Throws util::Error if a single block already exceeds a device limit.
OccupancyResult occupancy(const DeviceSpec& spec, int threads_per_block,
                          int regs_per_thread, std::int64_t smem_per_block);

}  // namespace mgs::sim
