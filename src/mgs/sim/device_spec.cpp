#include "mgs/sim/device_spec.hpp"

#include "mgs/util/check.hpp"

namespace mgs::sim {

DeviceSpec k80_spec() {
  DeviceSpec s;
  s.name = "Tesla K80 (GK210)";
  s.cc_major = 3;
  s.cc_minor = 7;
  s.num_sms = 13;
  s.max_warps_per_sm = 64;
  s.max_blocks_per_sm = 16;
  s.registers_per_sm = 128 * 1024;
  s.shared_mem_per_sm = 112 * 1024;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 0.875;
  s.cores_per_sm = 192;
  s.peak_bandwidth_gbps = 240.0;
  s.mem_efficiency_base = 0.72;
  s.saturation_warps_per_sm = 24;
  s.kernel_launch_overhead_us = 5.0;
  s.memory_bytes = std::int64_t{12} * 1024 * 1024 * 1024;
  return s;
}

DeviceSpec maxwell_spec() {
  DeviceSpec s;
  s.name = "GTX Titan X (GM200)";
  s.cc_major = 5;
  s.cc_minor = 2;
  s.num_sms = 24;
  s.max_warps_per_sm = 64;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 64 * 1024;
  s.shared_mem_per_sm = 96 * 1024;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 1.0;
  s.cores_per_sm = 128;
  s.peak_bandwidth_gbps = 336.0;
  s.mem_efficiency_base = 0.78;
  s.saturation_warps_per_sm = 20;
  s.kernel_launch_overhead_us = 5.0;
  s.memory_bytes = std::int64_t{12} * 1024 * 1024 * 1024;
  return s;
}

DeviceSpec pascal_spec() {
  DeviceSpec s;
  s.name = "Tesla P100 (GP100)";
  s.cc_major = 6;
  s.cc_minor = 0;
  s.num_sms = 56;
  s.max_warps_per_sm = 64;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 64 * 1024;
  s.shared_mem_per_sm = 64 * 1024;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 1.328;
  s.cores_per_sm = 64;
  s.peak_bandwidth_gbps = 732.0;
  s.mem_efficiency_base = 0.80;
  s.saturation_warps_per_sm = 16;
  s.kernel_launch_overhead_us = 4.0;
  s.memory_bytes = std::int64_t{16} * 1024 * 1024 * 1024;
  return s;
}

DeviceSpec spec_by_name(const std::string& name) {
  if (name == "k80") return k80_spec();
  if (name == "maxwell") return maxwell_spec();
  if (name == "pascal") return pascal_spec();
  throw util::Error("unknown device spec '" + name +
                    "' (expected k80, maxwell or pascal)");
}

}  // namespace mgs::sim
