#pragma once
/// \file timeline.hpp
/// Simulated-time bookkeeping. Every device (and every MPI rank) owns a
/// Clock; bulk-synchronous phases advance clocks and a Breakdown records
/// named per-phase totals (this is the data behind the paper's Figure 14).

#include <string>
#include <vector>

namespace mgs::sim {

/// Hardware engines a simulated device exposes. Each engine owns its own
/// in-order Clock: kernels advance the compute engine, async copies advance
/// the DMA (copy) engine, so communication and computation on one device
/// can overlap in modeled time -- the stream/event pipeline (simt::Stream)
/// is built on exactly this split.
enum class Engine {
  kCompute,  ///< SM work: kernel launches
  kDma,      ///< copy engine: async transfers / peer writes
};

const char* to_string(Engine e);

/// Monotonic simulated clock in seconds.
class Clock {
 public:
  double now() const { return now_; }
  /// Advance by a non-negative duration; returns the new time.
  double advance(double seconds);
  /// Move forward to at least `t` (no-op if already past).
  void sync_to(double t);
  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Max of several clocks (a synchronization point).
double max_now(const std::vector<const Clock*>& clocks);
/// Set every clock to the max of the group (models a barrier completing).
void sync_group(const std::vector<Clock*>& clocks);

/// Ordered phase -> accumulated-seconds map. Insertion order is preserved
/// so breakdown tables print phases in execution order.
class Breakdown {
 public:
  void add(const std::string& phase, double seconds);
  double total() const;
  double get(const std::string& phase) const;  ///< 0.0 when absent
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }
  /// Merge another breakdown into this one (phase-wise sums).
  void merge(const Breakdown& other);

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace mgs::sim
