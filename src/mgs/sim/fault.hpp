#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the simulated cluster. A FaultPlan is
/// a schedule of FaultEvents -- transient transfer failures, permanent
/// link-down, device-down, payload corruption, straggler slowdowns --
/// triggered at simulated timestamps or per-operation counts. The
/// FaultInjector evaluates the schedule at runtime; consumers (the
/// transfer engine, the MPI-like communicator, the scan executors) consult
/// it only when one is attached, so the default healthy path stays
/// bit-identical to a build without fault support.
///
/// Determinism: operation-count triggers are exact; probabilistic triggers
/// draw from a seeded engine keyed on the (src, dst, op) triple, so the
/// same plan over the same traffic produces the same fault sequence
/// regardless of host scheduling.

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mgs::sim {

enum class FaultKind {
  kTransientTransfer,  ///< attempt fails; a retry may succeed
  kLinkDown,           ///< permanent: the (src, dst) link never recovers
  kDeviceDown,         ///< the device is gone (from at_seconds onward)
  kCorruption,         ///< payload arrives corrupted (checksum catches it)
  kStraggler,          ///< transfers touching the device run factor x slower
};

const char* to_string(FaultKind k);

/// One scheduled fault. Matching is by endpoints and trigger:
///  - src/dst/device: -1 matches any endpoint;
///  - op >= 0: fires on the op-th matching operation (then `count` - 1
///    more consecutive ones);
///  - probability > 0: fires per-operation with that chance (seeded);
///  - at_seconds: the event is active from this simulated time onward
///    (0 = from the start).
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientTransfer;
  int src = -1;
  int dst = -1;
  int device = -1;
  std::int64_t op = -1;
  std::int64_t count = 1;
  double at_seconds = 0.0;
  double probability = 0.0;
  double factor = 2.0;  ///< straggler slowdown multiplier
};

/// The schedule plus the resilience policy knobs shared by every consumer.
struct FaultPlan {
  std::vector<FaultEvent> events;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  int max_retries = 4;           ///< attempts after the first
  double backoff_base_us = 50.0; ///< backoff before retry k is base * 2^k
  double timeout_seconds = std::numeric_limits<double>::infinity();

  bool empty() const { return events.empty(); }
};

/// Parse a fault-spec string (the bench binaries' --faults flag):
///   "event;event;..." where each event is "kind:key=val,key=val".
/// Kinds: transient, link-down, device-down, corrupt, straggler, policy.
/// Keys: src, dst, dev, op, count, at, prob, factor; the pseudo-event
/// "policy" sets retries, backoff-us, timeout-s. Examples:
///   "transient:src=0,dst=4,op=0,count=2"
///   "device-down:dev=3;policy:retries=2"
///   "corrupt:prob=0.05;straggler:dev=1,factor=4"
/// Throws util::Error on malformed specs.
FaultPlan parse_fault_plan(const std::string& spec);

/// Inverse of parse_fault_plan: render a plan back into the spec grammar
/// (non-default keys only, numbers formatted so they round-trip exactly).
/// parse_fault_plan(to_spec(p)) reproduces p field-for-field, so shrunk
/// chaos repros paste directly into any `--faults` flag.
std::string to_spec(const FaultPlan& plan);

/// Resilience-cost counters accumulated by the transfer engine and the
/// communicator while they work around injected faults.
struct FaultCounters {
  std::uint64_t transient_failures = 0;  ///< attempts that failed in flight
  std::uint64_t retries = 0;             ///< re-attempts (incl. re-transfers)
  std::uint64_t timeouts = 0;            ///< attempts abandoned at timeout
  std::uint64_t corruptions_detected = 0;
  std::uint64_t rerouted_transfers = 0;  ///< P2P copies sent via the host
  std::uint64_t rerouted_bytes = 0;
  double retry_seconds = 0.0;  ///< modeled time spent on failed attempts

  void merge(const FaultCounters& o);
  bool any() const;
};

/// Per-run resilience summary attached to core::RunResult. Empty (and
/// cost-free) when no injector is attached.
struct FaultReport {
  FaultCounters counters;
  bool degraded = false;            ///< ran on fewer resources than asked
  std::string degraded_mode;        ///< human-readable degraded placement
  std::vector<int> excluded_devices;
  std::vector<std::string> replanned;  ///< proposals that re-planned
  std::uint64_t invalidated_plans = 0; ///< plan-cache entries dropped
  /// Stage boundaries a mid-run recovery resumed from (one entry per
  /// resume, e.g. "Stage2" when completed Stage-1/gather work survived).
  std::vector<std::string> resumed_stages;

  bool any() const { return degraded || counters.any(); }
  std::string summary() const;
};

/// Evaluates a FaultPlan against the operation stream. Stateful: it keeps
/// per-link operation counters (for op-count triggers) and the set of
/// devices marked down at runtime. `epoch()` increments whenever device
/// liveness changes so cached placements can cheaply detect staleness.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Liveness epoch: starts at 1 (so "injector attached" differs from the
  /// no-injector epoch 0) and bumps on every mark_device_* call.
  std::uint64_t epoch() const { return epoch_; }

  /// Runtime device failure / recovery (on top of scheduled kDeviceDown).
  void mark_device_down(int dev);
  void mark_device_up(int dev);

  /// Down from the start of a run (scheduled with at_seconds <= 0, or
  /// marked down) -- what executors consult when (re)placing a run.
  bool device_is_down(int dev) const;
  /// Down at simulated time `now` (includes at_seconds > 0 schedules) --
  /// what the transfer layer consults per operation.
  bool device_down_at(int dev, double now) const;
  /// Every device currently down from the start.
  std::vector<int> down_devices(int num_devices) const;

  /// Permanent link failure between two endpoints (order-insensitive).
  /// `now` gates scheduled failures: an event with at_seconds > now has
  /// not fired yet. The default (infinity) preserves the legacy "down for
  /// the whole run" reading for callers without a clock.
  bool link_is_down(int src, int dst,
                    double now = std::numeric_limits<double>::infinity())
      const;

  /// Combined straggler slowdown for a transfer touching both endpoints
  /// (1.0 when neither is a straggler). Same `now` gating as
  /// link_is_down.
  double transfer_slowdown(
      int src, int dst,
      double now = std::numeric_limits<double>::infinity()) const;

  /// Straggler slowdown for compute kernels on `dev` at simulated time
  /// `now` (1.0 when the device is not a straggler yet). simt::launch
  /// consults this so stragglers delay kernels, not just transfers.
  double compute_slowdown(int dev, double now) const;

  /// Consult the schedule for one transfer attempt. Advances the (src,
  /// dst) operation counter on attempt 0 only, so retries of one logical
  /// operation re-evaluate the same op index (a transient fault with
  /// count=1 fails the first attempt and lets the retry through).
  struct Verdict {
    bool transient_fail = false;
    bool corrupt = false;
  };
  Verdict on_transfer_attempt(int src, int dst, int attempt, double now);

 private:
  bool matches_link(const FaultEvent& e, int src, int dst) const;
  /// Deterministic per-(src, dst, op) coin flip for probability triggers.
  bool coin(double p, int src, int dst, std::int64_t op,
            std::uint32_t salt) const;

  FaultPlan plan_;
  std::map<std::pair<int, int>, std::int64_t> op_counts_;
  std::set<int> marked_down_;
  std::uint64_t epoch_ = 1;
};

}  // namespace mgs::sim
