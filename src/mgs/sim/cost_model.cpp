#include "mgs/sim/cost_model.hpp"

#include <algorithm>

#include "mgs/util/check.hpp"
#include "mgs/util/math.hpp"

namespace mgs::sim {

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  mem_transactions += o.mem_transactions;
  alu_ops += o.alu_ops;
  // Launch shape fields are per-launch, not additive; keep the first.
  if (blocks == 0) {
    blocks = o.blocks;
    threads_per_block = o.threads_per_block;
    regs_per_thread = o.regs_per_thread;
    smem_per_block = o.smem_per_block;
  } else {
    blocks += o.blocks;
  }
  return *this;
}

KernelTime kernel_time(const DeviceSpec& spec, const KernelStats& stats) {
  MGS_CHECK(stats.blocks > 0, "kernel_time: launch with zero blocks");
  MGS_CHECK(stats.threads_per_block > 0,
            "kernel_time: launch with zero threads per block");

  KernelTime t;
  t.occ = occupancy(spec, stats.threads_per_block, stats.regs_per_thread,
                    stats.smem_per_block);

  // Concurrency: how much of the device's latency-hiding capacity this
  // launch engages. Two effects fold in:
  //  (1) resident warps per SM (Premise 1's occupancy target), and
  //  (2) whether the grid has enough blocks to fill all SMs at that
  //      residency (small Stage-2 launches do not).
  const int warps_per_block = static_cast<int>(util::div_up(
      static_cast<std::uint64_t>(stats.threads_per_block),
      static_cast<std::uint64_t>(spec.warp_size)));
  const double resident_warps =
      static_cast<double>(std::min<std::uint64_t>(
          stats.blocks * static_cast<std::uint64_t>(warps_per_block),
          static_cast<std::uint64_t>(t.occ.warps_per_sm) * spec.num_sms));
  const double saturation_warps =
      static_cast<double>(spec.saturation_warps_per_sm) * spec.num_sms;
  t.concurrency = std::clamp(resident_warps / saturation_warps,
                             spec.concurrency_floor, 1.0);

  // Coalescing: ideal segment count over issued segment count.
  const std::uint64_t ideal_txn = util::div_up(
      stats.total_bytes(), static_cast<std::uint64_t>(spec.transaction_bytes));
  t.coalescing =
      stats.mem_transactions == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(ideal_txn) /
                              static_cast<double>(stats.mem_transactions));

  const double mem_bw = spec.peak_bandwidth_bps() * spec.mem_efficiency_base *
                        t.concurrency * t.coalescing;
  t.mem_seconds =
      stats.total_bytes() == 0
          ? 0.0
          : spec.dram_latency_us * 1e-6 +
                static_cast<double>(stats.total_bytes()) / mem_bw;

  const double alu_rate = spec.peak_alu_ops_per_sec() * t.concurrency;
  t.alu_seconds = stats.alu_ops == 0
                      ? 0.0
                      : static_cast<double>(stats.alu_ops) / alu_rate;

  t.overhead_seconds = spec.kernel_launch_overhead_us * 1e-6;
  t.seconds = t.overhead_seconds + std::max(t.mem_seconds, t.alu_seconds);
  t.effective_bandwidth_bps =
      t.mem_seconds > 0.0
          ? static_cast<double>(stats.total_bytes()) / t.mem_seconds
          : 0.0;
  return t;
}

double streaming_time(const DeviceSpec& spec, std::uint64_t bytes) {
  const double bw = spec.peak_bandwidth_bps() * spec.mem_efficiency_base;
  return spec.kernel_launch_overhead_us * 1e-6 +
         static_cast<double>(bytes) / bw;
}

}  // namespace mgs::sim
