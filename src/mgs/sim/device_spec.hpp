#pragma once
/// \file device_spec.hpp
/// Static description of a simulated GPU. The numbers for the presets are
/// taken from NVIDIA's published specifications; the paper's platform is
/// the Tesla K80 (one logical GPU = one GK210 die, compute capability 3.7).

#include <cstdint>
#include <string>

namespace mgs::sim {

/// Hardware limits and first-order performance characteristics of one GPU.
struct DeviceSpec {
  std::string name;
  int cc_major = 3;
  int cc_minor = 7;

  // --- SM resource limits (drive the occupancy calculator / Table 3) ---
  int num_sms = 13;
  int warp_size = 32;
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 16;
  int max_threads_per_block = 1024;
  std::int64_t registers_per_sm = 128 * 1024;
  int max_regs_per_thread = 255;
  std::int64_t shared_mem_per_sm = 112 * 1024;
  std::int64_t shared_mem_per_block = 48 * 1024;
  /// Register allocation granularity (registers are reserved per warp in
  /// multiples of this many registers on Kepler).
  int reg_alloc_granularity = 256;

  // --- First-order performance model ---
  double clock_ghz = 0.875;         ///< SM clock (boost)
  int cores_per_sm = 192;           ///< CUDA cores (Kepler GK210)
  double peak_bandwidth_gbps = 240.0;  ///< DRAM peak, GB/s per logical GPU
  /// Fraction of peak DRAM bandwidth a perfectly coalesced, fully occupied
  /// streaming kernel achieves in practice (ECC on, ~70-75% on Kepler).
  double mem_efficiency_base = 0.72;
  /// Number of resident warps per SM needed to saturate the memory system
  /// (Little's law; Kepler needs substantial parallelism to cover latency).
  int saturation_warps_per_sm = 24;
  /// DRAM access latency (one full round trip) added to every kernel's
  /// memory time; dominates tiny launches.
  double dram_latency_us = 0.6;
  /// Lower bound on the concurrency factor: even a single resident warp
  /// streams at this fraction of peak (it is latency-bound, not starved).
  double concurrency_floor = 0.08;
  double kernel_launch_overhead_us = 5.0;  ///< host->device launch latency
  std::int64_t memory_bytes = std::int64_t{12} * 1024 * 1024 * 1024;

  /// DRAM transaction (memory segment) size in bytes; coalescing is
  /// measured in touched 32-byte segments.
  int transaction_bytes = 32;

  double clock_hz() const { return clock_ghz * 1e9; }
  double peak_bandwidth_bps() const { return peak_bandwidth_gbps * 1e9; }
  /// Peak integer/ALU throughput in lane-operations per second.
  double peak_alu_ops_per_sec() const {
    return static_cast<double>(num_sms) * cores_per_sm * clock_hz();
  }
};

/// Tesla K80 (GK210 die), the paper's test platform (Table 1).
DeviceSpec k80_spec();
/// GeForce GTX Titan X (Maxwell, cc 5.2) -- exercises the premise machinery
/// on the architecture the paper mentions for its 32-blocks/SM limit.
DeviceSpec maxwell_spec();
/// Tesla P100 (Pascal, cc 6.0).
DeviceSpec pascal_spec();

/// Look up a preset by name ("k80", "maxwell", "pascal"); throws util::Error.
DeviceSpec spec_by_name(const std::string& name);

}  // namespace mgs::sim
