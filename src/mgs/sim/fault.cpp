#include "mgs/sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mgs/util/check.hpp"

namespace mgs::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientTransfer: return "transient";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kDeviceDown: return "device-down";
    case FaultKind::kCorruption: return "corrupt";
    case FaultKind::kStraggler: return "straggler";
  }
  return "?";
}

// ---------------------------------------------------------------- parsing

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double parse_num(const std::string& key, const std::string& val) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(val, &pos);
    MGS_REQUIRE(pos == val.size(), "faults: trailing junk in value");
    return d;
  } catch (const util::Error&) {
    throw;
  } catch (const std::exception&) {
    throw util::Error("faults: bad numeric value for '" + key + "': " + val);
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : split(spec, ';')) {
    const auto colon = item.find(':');
    const std::string kind_name = item.substr(0, colon);
    std::map<std::string, double> kv;
    if (colon != std::string::npos) {
      for (const std::string& pair : split(item.substr(colon + 1), ',')) {
        const auto eq = pair.find('=');
        MGS_REQUIRE(eq != std::string::npos,
                    "faults: expected key=value in '" + pair + "'");
        kv[pair.substr(0, eq)] = parse_num(pair.substr(0, eq),
                                           pair.substr(eq + 1));
      }
    }
    auto take = [&kv](const char* key, double def) {
      const auto it = kv.find(key);
      if (it == kv.end()) return def;
      const double v = it->second;
      kv.erase(it);
      return v;
    };

    if (kind_name == "policy") {
      plan.max_retries = static_cast<int>(take("retries", plan.max_retries));
      plan.backoff_base_us = take("backoff-us", plan.backoff_base_us);
      plan.timeout_seconds = take("timeout-s", plan.timeout_seconds);
      plan.seed = static_cast<std::uint64_t>(
          take("seed", static_cast<double>(plan.seed)));
    } else {
      FaultEvent e;
      if (kind_name == "transient") {
        e.kind = FaultKind::kTransientTransfer;
      } else if (kind_name == "link-down") {
        e.kind = FaultKind::kLinkDown;
      } else if (kind_name == "device-down") {
        e.kind = FaultKind::kDeviceDown;
      } else if (kind_name == "corrupt") {
        e.kind = FaultKind::kCorruption;
      } else if (kind_name == "straggler") {
        e.kind = FaultKind::kStraggler;
      } else {
        throw util::Error("faults: unknown fault kind '" + kind_name + "'");
      }
      e.src = static_cast<int>(take("src", -1));
      e.dst = static_cast<int>(take("dst", -1));
      e.device = static_cast<int>(take("dev", -1));
      e.op = static_cast<std::int64_t>(take("op", -1));
      e.count = static_cast<std::int64_t>(take("count", 1));
      e.at_seconds = take("at", 0.0);
      e.probability = take("prob", 0.0);
      e.factor = take("factor", 2.0);
      MGS_REQUIRE(e.probability >= 0.0 && e.probability <= 1.0,
                  "faults: prob must be in [0, 1]");
      MGS_REQUIRE(e.kind != FaultKind::kDeviceDown || e.device >= 0,
                  "faults: device-down needs dev=<id>");
      MGS_REQUIRE(e.kind != FaultKind::kStraggler || e.device >= 0,
                  "faults: straggler needs dev=<id>");
      MGS_REQUIRE(e.kind != FaultKind::kLinkDown ||
                      (e.src >= 0 && e.dst >= 0),
                  "faults: link-down needs src=<id>,dst=<id>");
      MGS_REQUIRE(
          e.kind != FaultKind::kTransientTransfer &&
                  e.kind != FaultKind::kCorruption ||
              e.op >= 0 || e.probability > 0.0,
          "faults: transient/corrupt need op=<k> or prob=<p>");
      plan.events.push_back(e);
    }
    for (const auto& [key, val] : kv) {
      (void)val;
      throw util::Error("faults: unknown key '" + key + "' for '" +
                        kind_name + "'");
    }
  }
  return plan;
}

namespace {

/// Shortest decimal form that std::stod recovers exactly: integers print
/// without a fraction, everything else at max_digits10.
std::string render_num(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  for (const FaultEvent& e : plan.events) {
    sep();
    os << to_string(e.kind) << ':';
    bool fk = true;
    auto key = [&](const char* k, double v) {
      if (!fk) os << ',';
      fk = false;
      os << k << '=' << render_num(v);
    };
    if (e.src >= 0) key("src", e.src);
    if (e.dst >= 0) key("dst", e.dst);
    if (e.device >= 0) key("dev", e.device);
    if (e.op >= 0) key("op", static_cast<double>(e.op));
    if (e.count != 1) key("count", static_cast<double>(e.count));
    if (e.at_seconds != 0.0) key("at", e.at_seconds);
    if (e.probability != 0.0) key("prob", e.probability);
    if (e.factor != 2.0) key("factor", e.factor);
    MGS_REQUIRE(!fk, "to_spec: event with no keys cannot round-trip");
  }
  const FaultPlan defaults;
  const bool policy = plan.max_retries != defaults.max_retries ||
                      plan.backoff_base_us != defaults.backoff_base_us ||
                      plan.timeout_seconds != defaults.timeout_seconds ||
                      plan.seed != defaults.seed;
  if (policy) {
    sep();
    os << "policy:";
    bool fk = true;
    auto key = [&](const char* k, double v) {
      if (!fk) os << ',';
      fk = false;
      os << k << '=' << render_num(v);
    };
    if (plan.max_retries != defaults.max_retries) {
      key("retries", plan.max_retries);
    }
    if (plan.backoff_base_us != defaults.backoff_base_us) {
      key("backoff-us", plan.backoff_base_us);
    }
    if (plan.timeout_seconds != defaults.timeout_seconds) {
      key("timeout-s", plan.timeout_seconds);
    }
    if (plan.seed != defaults.seed) {
      key("seed", static_cast<double>(plan.seed));
    }
  }
  return os.str();
}

// --------------------------------------------------------------- counters

void FaultCounters::merge(const FaultCounters& o) {
  transient_failures += o.transient_failures;
  retries += o.retries;
  timeouts += o.timeouts;
  corruptions_detected += o.corruptions_detected;
  rerouted_transfers += o.rerouted_transfers;
  rerouted_bytes += o.rerouted_bytes;
  retry_seconds += o.retry_seconds;
}

bool FaultCounters::any() const {
  return transient_failures > 0 || retries > 0 || timeouts > 0 ||
         corruptions_detected > 0 || rerouted_transfers > 0;
}

std::string FaultReport::summary() const {
  if (!any()) return "healthy";
  std::ostringstream os;
  if (degraded) os << "degraded [" << degraded_mode << "]";
  else os << "recovered";
  os << ": retries=" << counters.retries
     << " timeouts=" << counters.timeouts
     << " corruptions=" << counters.corruptions_detected
     << " rerouted_bytes=" << counters.rerouted_bytes
     << " invalidated_plans=" << invalidated_plans;
  if (!resumed_stages.empty()) {
    os << " resumed=";
    for (std::size_t i = 0; i < resumed_stages.size(); ++i) {
      if (i > 0) os << '+';
      os << resumed_stages[i];
    }
  }
  return os.str();
}

// --------------------------------------------------------------- injector

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::mark_device_down(int dev) {
  if (marked_down_.insert(dev).second) ++epoch_;
}

void FaultInjector::mark_device_up(int dev) {
  if (marked_down_.erase(dev) > 0) ++epoch_;
}

bool FaultInjector::device_is_down(int dev) const {
  if (marked_down_.count(dev) > 0) return true;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kDeviceDown && e.device == dev &&
        e.at_seconds <= 0.0) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::device_down_at(int dev, double now) const {
  if (marked_down_.count(dev) > 0) return true;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kDeviceDown && e.device == dev &&
        e.at_seconds <= now) {
      return true;
    }
  }
  return false;
}

std::vector<int> FaultInjector::down_devices(int num_devices) const {
  std::vector<int> down;
  for (int d = 0; d < num_devices; ++d) {
    if (device_is_down(d)) down.push_back(d);
  }
  return down;
}

bool FaultInjector::link_is_down(int src, int dst, double now) const {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kLinkDown) continue;
    if (e.at_seconds > now) continue;
    if ((e.src == src && e.dst == dst) || (e.src == dst && e.dst == src)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::transfer_slowdown(int src, int dst, double now) const {
  double f = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kStraggler) continue;
    if (e.at_seconds > now) continue;
    if (e.device == src || e.device == dst) f = std::max(f, e.factor);
  }
  return f;
}

double FaultInjector::compute_slowdown(int dev, double now) const {
  double f = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kStraggler) continue;
    if (e.at_seconds > now) continue;
    if (e.device == dev) f = std::max(f, e.factor);
  }
  return f;
}

bool FaultInjector::matches_link(const FaultEvent& e, int src,
                                 int dst) const {
  return (e.src < 0 || e.src == src) && (e.dst < 0 || e.dst == dst);
}

bool FaultInjector::coin(double p, int src, int dst, std::int64_t op,
                         std::uint32_t salt) const {
  // splitmix64 over a key built from the operation identity: stable across
  // runs and independent of host scheduling.
  std::uint64_t x = plan_.seed;
  x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) ^
       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 20) ^
       static_cast<std::uint64_t>(op) ^
       (static_cast<std::uint64_t>(salt) << 56);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < p;
}

FaultInjector::Verdict FaultInjector::on_transfer_attempt(int src, int dst,
                                                          int attempt,
                                                          double now) {
  Verdict v;
  if (plan_.events.empty()) return v;
  auto& op_count = op_counts_[{src, dst}];
  const std::int64_t op = op_count;
  if (attempt == 0) ++op_count;

  for (const FaultEvent& e : plan_.events) {
    if (e.at_seconds > now && e.at_seconds > 0.0) continue;
    if (e.kind == FaultKind::kTransientTransfer) {
      if (!matches_link(e, src, dst)) continue;
      // Op-count trigger: fail attempt 0 of ops [op, op + count); the
      // retry of the same op goes through.
      if (e.op >= 0 && attempt == 0 && op >= e.op && op < e.op + e.count) {
        v.transient_fail = true;
      }
      if (e.probability > 0.0 &&
          coin(e.probability, src, dst, op * 16 + attempt, 0x7af)) {
        v.transient_fail = true;
      }
    } else if (e.kind == FaultKind::kCorruption) {
      if (!matches_link(e, src, dst)) continue;
      if (e.op >= 0 && attempt == 0 && op >= e.op && op < e.op + e.count) {
        v.corrupt = true;
      }
      if (e.probability > 0.0 &&
          coin(e.probability, src, dst, op * 16 + attempt, 0xc02)) {
        v.corrupt = true;
      }
    }
  }
  return v;
}

}  // namespace mgs::sim
