#include "mgs/sim/timeline.hpp"

#include <algorithm>

#include "mgs/util/check.hpp"

namespace mgs::sim {

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kCompute:
      return "compute";
    case Engine::kDma:
      return "dma";
  }
  return "?";
}

double Clock::advance(double seconds) {
  MGS_CHECK(seconds >= 0.0, "Clock::advance with negative duration");
  now_ += seconds;
  return now_;
}

void Clock::sync_to(double t) { now_ = std::max(now_, t); }

double max_now(const std::vector<const Clock*>& clocks) {
  MGS_CHECK(!clocks.empty(), "max_now of empty clock group");
  double t = 0.0;
  for (const Clock* c : clocks) t = std::max(t, c->now());
  return t;
}

void sync_group(const std::vector<Clock*>& clocks) {
  MGS_CHECK(!clocks.empty(), "sync_group of empty clock group");
  double t = 0.0;
  for (Clock* c : clocks) t = std::max(t, c->now());
  for (Clock* c : clocks) c->sync_to(t);
}

void Breakdown::add(const std::string& phase, double seconds) {
  MGS_CHECK(seconds >= 0.0, "Breakdown::add with negative duration");
  for (auto& [name, total] : entries_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  entries_.emplace_back(phase, seconds);
}

double Breakdown::total() const {
  double t = 0.0;
  for (const auto& [name, s] : entries_) {
    (void)name;
    t += s;
  }
  return t;
}

double Breakdown::get(const std::string& phase) const {
  for (const auto& [name, s] : entries_) {
    if (name == phase) return s;
  }
  return 0.0;
}

void Breakdown::merge(const Breakdown& other) {
  for (const auto& [name, s] : other.entries()) add(name, s);
}

}  // namespace mgs::sim
