#pragma once
/// \file cost_model.hpp
/// First-order kernel timing model. Kernels in this project execute
/// *functionally* on the host (see mgs/simt), while this model converts the
/// measured work -- bytes moved, DRAM transactions, lane-ops -- into a
/// simulated duration on the target DeviceSpec.
///
/// The model is deliberately simple and transparent:
///
///   t = launch_overhead + max(t_mem, t_alu)
///   t_mem = bytes / (peak_bw * base_eff * concurrency * coalescing)
///   t_alu = lane_ops / (peak_alu * concurrency)
///
/// where `concurrency` captures both per-SM occupancy (Premise 1) and
/// grid-level underutilization (the paper's Stage-2-at-G=1 effect), and
/// `coalescing` is ideal/actual 32-byte DRAM transactions (why the kernels
/// read int4 vectors).

#include <cstdint>

#include "mgs/sim/device_spec.hpp"
#include "mgs/sim/occupancy.hpp"

namespace mgs::sim {

/// Work counters accumulated while a kernel runs functionally.
struct KernelStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// DRAM transactions actually issued (32-byte segments touched).
  std::uint64_t mem_transactions = 0;
  /// Lane-operations: shuffles, adds, predicated lane work.
  std::uint64_t alu_ops = 0;

  // Launch shape / resource usage (feeds the occupancy calculator).
  std::uint64_t blocks = 0;
  int threads_per_block = 0;
  int regs_per_thread = 32;
  std::int64_t smem_per_block = 0;

  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
  KernelStats& operator+=(const KernelStats& o);
};

/// Timing verdict for one kernel launch.
struct KernelTime {
  double seconds = 0.0;           ///< total, = overhead + max(mem, alu)
  double mem_seconds = 0.0;
  double alu_seconds = 0.0;
  double overhead_seconds = 0.0;
  double effective_bandwidth_bps = 0.0;  ///< bytes / mem_seconds
  double concurrency = 0.0;       ///< 0..1 utilization factor used
  double coalescing = 0.0;        ///< 0..1 transaction efficiency used
  OccupancyResult occ;
};

/// Evaluate the model for one launch. Requires stats.blocks > 0.
KernelTime kernel_time(const DeviceSpec& spec, const KernelStats& stats);

/// Convenience: modeled duration of a straightforward streaming kernel that
/// moves `bytes` at full occupancy and perfect coalescing (used by baseline
/// models for passes we account analytically, e.g. cudaMemset).
double streaming_time(const DeviceSpec& spec, std::uint64_t bytes);

}  // namespace mgs::sim
