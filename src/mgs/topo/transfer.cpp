#include "mgs/topo/transfer.hpp"

#include <algorithm>

#include "mgs/sim/profiler.hpp"

namespace mgs::topo {

namespace {

void profile_transfer(LinkType link, int dst_dev, double start,
                      double seconds, std::uint64_t bytes) {
  if (!sim::Profiler::instance().enabled()) return;
  sim::ProfileRecord rec;
  rec.name = std::string("copy:") + to_string(link);
  rec.kind = sim::EventKind::kTransfer;
  rec.device_id = dst_dev;
  rec.start_seconds = start;
  rec.duration_seconds = seconds;
  rec.bytes = bytes;
  sim::Profiler::instance().record(std::move(rec));
}

}  // namespace

double TransferEngine::link_time(int src_dev, int dst_dev,
                                 std::uint64_t bytes) const {
  const LinkSpec& links = cluster_->config().links;
  const double b = static_cast<double>(bytes);
  switch (cluster_->link_between(src_dev, dst_dev)) {
    case LinkType::kSelf:
      // Device-local copy engine: bounded by DRAM (read + write).
      return 1e-6 + 2.0 * b / (cluster_->config().gpu.peak_bandwidth_bps() *
                               cluster_->config().gpu.mem_efficiency_base);
    case LinkType::kP2P:
      return links.p2p_latency_us * 1e-6 +
             b / (links.p2p_bandwidth_gbps * 1e9);
    case LinkType::kHostStaged:
      // Two hops (D2H then H2D), each paying latency and bandwidth.
      return 2.0 * (links.host_latency_us * 1e-6 +
                    b / (links.host_bandwidth_gbps * 1e9));
    case LinkType::kInterNode:
      return (links.ib_latency_us + links.mpi_overhead_us) * 1e-6 +
             b / (links.ib_bandwidth_gbps * 1e9);
  }
  return 0.0;
}

double TransferEngine::link_time_2d(int src_dev, int dst_dev,
                                    std::uint64_t bytes,
                                    std::uint64_t rows) const {
  const LinkSpec& links = cluster_->config().links;
  // Per-row cost scale: the on-device copy engine and P2P peer writes
  // pipeline strided rows almost for free; host staging pays a host
  // round trip on each of its two hops.
  double row_scale = 1.0;
  switch (cluster_->link_between(src_dev, dst_dev)) {
    case LinkType::kSelf:
      row_scale = 0.1;
      break;
    case LinkType::kP2P:
      row_scale = 0.2;
      break;
    case LinkType::kHostStaged:
      row_scale = 2.0;
      break;
    case LinkType::kInterNode:
      row_scale = 1.0;  // RDMA scatter/gather entries
      break;
  }
  return link_time(src_dev, dst_dev, bytes) +
         row_scale * links.row_overhead_us * 1e-6 * static_cast<double>(rows);
}

TransferResult TransferEngine::account_2d(int src_dev, int dst_dev,
                                          std::uint64_t bytes,
                                          std::uint64_t rows) {
  TransferResult r;
  r.link = cluster_->link_between(src_dev, dst_dev);
  r.bytes = bytes;
  r.seconds = link_time_2d(src_dev, dst_dev, bytes, rows);

  sim::Clock& src_clock = cluster_->device(src_dev).clock();
  sim::Clock& dst_clock = cluster_->device(dst_dev).clock();
  const double start = std::max(src_clock.now(), dst_clock.now());
  src_clock.sync_to(start + r.seconds);
  dst_clock.sync_to(start + r.seconds);

  breakdown_.add(to_string(r.link), r.seconds);
  profile_transfer(r.link, dst_dev, start, r.seconds, bytes);
  return r;
}

TransferResult TransferEngine::account(int src_dev, int dst_dev,
                                       std::uint64_t bytes) {
  TransferResult r;
  r.link = cluster_->link_between(src_dev, dst_dev);
  r.bytes = bytes;
  r.seconds = link_time(src_dev, dst_dev, bytes);

  sim::Clock& src_clock = cluster_->device(src_dev).clock();
  sim::Clock& dst_clock = cluster_->device(dst_dev).clock();
  const double start = std::max(src_clock.now(), dst_clock.now());
  src_clock.sync_to(start + r.seconds);
  dst_clock.sync_to(start + r.seconds);

  breakdown_.add(to_string(r.link), r.seconds);
  profile_transfer(r.link, dst_dev, start, r.seconds, bytes);
  return r;
}

}  // namespace mgs::topo
