#include "mgs/topo/transfer.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "mgs/obs/span.hpp"
#include "mgs/sim/profiler.hpp"

namespace mgs::topo {

namespace {

obs::Category category_of(LinkType link) {
  switch (link) {
    case LinkType::kP2P:
      return obs::Category::kP2P;
    case LinkType::kSelf:
    case LinkType::kHostStaged:
      return obs::Category::kHostStaged;
    case LinkType::kInterNode:
      return obs::Category::kMpi;
  }
  return obs::Category::kOther;
}

void profile_transfer(LinkType link, int dst_dev, double start,
                      double seconds, std::uint64_t bytes) {
  if (!sim::Profiler::instance().enabled()) return;
  sim::ProfileRecord rec;
  rec.name = std::string("copy:") + to_string(link);
  rec.kind = sim::EventKind::kTransfer;
  rec.device_id = dst_dev;
  rec.start_seconds = start;
  rec.duration_seconds = seconds;
  rec.bytes = bytes;
  sim::Profiler::instance().record(std::move(rec));
}

}  // namespace

double TransferEngine::time_on_link(LinkType link, std::uint64_t bytes) const {
  const LinkSpec& links = cluster_->config().links;
  const double b = static_cast<double>(bytes);
  switch (link) {
    case LinkType::kSelf:
      // Device-local copy engine: bounded by DRAM (read + write).
      return 1e-6 + 2.0 * b / (cluster_->config().gpu.peak_bandwidth_bps() *
                               cluster_->config().gpu.mem_efficiency_base);
    case LinkType::kP2P:
      return links.p2p_latency_us * 1e-6 +
             b / (links.p2p_bandwidth_gbps * 1e9);
    case LinkType::kHostStaged:
      // Two hops (D2H then H2D), each paying latency and bandwidth.
      return 2.0 * (links.host_latency_us * 1e-6 +
                    b / (links.host_bandwidth_gbps * 1e9));
    case LinkType::kInterNode:
      return (links.ib_latency_us + links.mpi_overhead_us) * 1e-6 +
             b / (links.ib_bandwidth_gbps * 1e9);
  }
  return 0.0;
}

double TransferEngine::time_on_link_2d(LinkType link, std::uint64_t bytes,
                                       std::uint64_t rows) const {
  const LinkSpec& links = cluster_->config().links;
  // Per-row cost scale: the on-device copy engine and P2P peer writes
  // pipeline strided rows almost for free; host staging pays a host
  // round trip on each of its two hops.
  double row_scale = 1.0;
  switch (link) {
    case LinkType::kSelf:
      row_scale = 0.1;
      break;
    case LinkType::kP2P:
      row_scale = 0.2;
      break;
    case LinkType::kHostStaged:
      row_scale = 2.0;
      break;
    case LinkType::kInterNode:
      row_scale = 1.0;  // RDMA scatter/gather entries
      break;
  }
  return time_on_link(link, bytes) +
         row_scale * links.row_overhead_us * 1e-6 * static_cast<double>(rows);
}

double TransferEngine::link_time(int src_dev, int dst_dev,
                                 std::uint64_t bytes) const {
  return time_on_link(cluster_->link_between(src_dev, dst_dev), bytes);
}

double TransferEngine::link_time_2d(int src_dev, int dst_dev,
                                    std::uint64_t bytes,
                                    std::uint64_t rows) const {
  return time_on_link_2d(cluster_->link_between(src_dev, dst_dev), bytes,
                         rows);
}

double TransferEngine::link_latency(int src_dev, int dst_dev) const {
  return latency_of(cluster_->link_between(src_dev, dst_dev));
}

double TransferEngine::latency_of(LinkType link) const {
  const LinkSpec& links = cluster_->config().links;
  switch (link) {
    case LinkType::kSelf:
      return 1e-6;
    case LinkType::kP2P:
      return links.p2p_latency_us * 1e-6;
    case LinkType::kHostStaged:
      return 2.0 * links.host_latency_us * 1e-6;
    case LinkType::kInterNode:
      return (links.ib_latency_us + links.mpi_overhead_us) * 1e-6;
  }
  return 0.0;
}

TransferResult TransferEngine::account(int src_dev, int dst_dev,
                                       std::uint64_t bytes,
                                       std::uint64_t rows, bool is_2d,
                                       bool& corrupt_once) {
  return account_on(src_dev, dst_dev, bytes, rows, is_2d, corrupt_once,
                    sim::Engine::kCompute, 0.0, nullptr);
}

TransferResult TransferEngine::account_on(int src_dev, int dst_dev,
                                          std::uint64_t bytes,
                                          std::uint64_t rows, bool is_2d,
                                          bool& corrupt_once,
                                          sim::Engine engine,
                                          double earliest_start,
                                          double* completed_at) {
  TransferResult r;
  r.bytes = bytes;
  LinkType link = cluster_->link_between(src_dev, dst_dev);

  sim::Clock& src_clock = cluster_->device(src_dev).engine_clock(engine);
  sim::Clock& dst_clock = cluster_->device(dst_dev).engine_clock(engine);
  const double start =
      std::max({src_clock.now(), dst_clock.now(), earliest_start});

  // Fault-recovery sub-events are buffered here (with absolute simulated
  // times) and attached as children of the transfer span once its extent
  // is known. Empty on the healthy path and when no session is installed.
  obs::TraceSession* ts = obs::TraceSession::current();
  std::vector<obs::SpanRecord> fault_events;
  std::uint64_t obs_retries = 0;
  const auto fault_event =
      [&](const char* name, double at,
          std::initializer_list<std::pair<std::string, std::string>> notes) {
        if (ts == nullptr) return;
        obs::SpanRecord ev;
        ev.name = name;
        ev.kind = obs::SpanKind::kFault;
        ev.category = obs::Category::kOther;
        ev.device = dst_dev;
        ev.src_device = src_dev;
        ev.start_seconds = at;
        ev.end_seconds = at;
        ev.notes.assign(notes.begin(), notes.end());
        fault_events.push_back(std::move(ev));
      };

  sim::FaultInjector* fi = cluster_->fault_injector();
  double seconds = 0.0;
  if (fi == nullptr) {
    // Healthy fast path: identical to the pre-resilience engine.
    seconds = is_2d ? time_on_link_2d(link, bytes, rows)
                    : time_on_link(link, bytes);
  } else {
    if (fi->device_down_at(src_dev, start)) {
      throw TransferError("transfer from down device " +
                              std::to_string(src_dev),
                          src_dev, dst_dev);
    }
    if (fi->device_down_at(dst_dev, start)) {
      throw TransferError("transfer to down device " +
                              std::to_string(dst_dev),
                          src_dev, dst_dev);
    }
    if (link != LinkType::kSelf && fi->link_is_down(src_dev, dst_dev, start)) {
      if (link == LinkType::kP2P) {
        // A dead peer link between GPUs of one node still has the host
        // path: reroute as a D2H+H2D staging pair.
        link = LinkType::kHostStaged;
        ++faults_seen_.rerouted_transfers;
        faults_seen_.rerouted_bytes += bytes;
        fault_event("reroute", start,
                    {{"from", "p2p"}, {"to", "host-staged"}});
      } else {
        throw TransferError("link " + std::to_string(src_dev) + "->" +
                                std::to_string(dst_dev) +
                                " down with no alternate route",
                            src_dev, dst_dev);
      }
    }

    const double base = is_2d ? time_on_link_2d(link, bytes, rows)
                              : time_on_link(link, bytes);
    const double attempt_time =
        base * fi->transfer_slowdown(src_dev, dst_dev, start);
    const sim::FaultPlan& plan = fi->plan();
    for (int attempt = 0;; ++attempt) {
      const auto verdict =
          fi->on_transfer_attempt(src_dev, dst_dev, attempt, start + seconds);
      const bool timed_out = attempt_time > plan.timeout_seconds;
      const double spent =
          timed_out ? plan.timeout_seconds : attempt_time;
      seconds += spent;
      if (!timed_out && !verdict.transient_fail) {
        if (verdict.corrupt) {
          // Checksum mismatch on arrival: one re-transfer (the caller
          // performs the functional corrupt-verify-repair pass).
          ++faults_seen_.corruptions_detected;
          ++faults_seen_.retries;
          ++obs_retries;
          fault_event("corrupt-retransfer", start + seconds,
                      {{"attempt", std::to_string(attempt)}});
          faults_seen_.retry_seconds += attempt_time;
          seconds += attempt_time;
          corrupt_once = true;
        }
        break;
      }
      if (timed_out) {
        ++faults_seen_.timeouts;
      } else {
        ++faults_seen_.transient_failures;
      }
      fault_event(timed_out ? "timeout" : "transient", start + seconds,
                  {{"attempt", std::to_string(attempt)}});
      faults_seen_.retry_seconds += spent;
      if (attempt >= plan.max_retries) {
        throw TransferError(
            std::string(timed_out ? "transfer timed out" : "transfer failed") +
                " after " + std::to_string(attempt + 1) + " attempts (" +
                std::to_string(src_dev) + "->" + std::to_string(dst_dev) +
                ")",
            src_dev, dst_dev);
      }
      // Exponential backoff before the retry, charged as modeled time.
      const double backoff =
          plan.backoff_base_us * 1e-6 * static_cast<double>(1ll << attempt);
      seconds += backoff;
      faults_seen_.retry_seconds += backoff;
      ++faults_seen_.retries;
      ++obs_retries;
    }
  }

  r.link = link;
  r.seconds = seconds;
  // DMA-queue pipelining: a copy engine is held for the payload and
  // per-row time only; the link's fixed latency delays *completion* but
  // overlaps with the next queued transfer, the way back-to-back async
  // copies on one hardware copy engine sustain full link bandwidth. The
  // compute-engine path keeps the legacy fully-serialized semantics.
  const double occupancy =
      engine == sim::Engine::kDma
          ? std::max(0.0, seconds - latency_of(link))
          : seconds;
  src_clock.sync_to(start + occupancy);
  dst_clock.sync_to(start + occupancy);
  if (completed_at != nullptr) *completed_at = start + seconds;

  breakdown_.add(to_string(link), seconds);
  profile_transfer(link, dst_dev, start, seconds, bytes);
  if (ts != nullptr) {
    obs::SpanRecord rec;
    rec.name = std::string("copy:") + to_string(link);
    rec.kind = obs::SpanKind::kTransfer;
    rec.category = category_of(link);
    rec.device = dst_dev;
    rec.src_device = src_dev;
    rec.start_seconds = start;
    // The span covers the engine-occupancy window, so spans on one DMA
    // lane never overlap; the pipelined latency tail is kept as a note.
    rec.end_seconds = start + occupancy;
    rec.bytes = bytes;
    rec.notes.emplace_back("link", to_string(link));
    if (engine == sim::Engine::kDma) {
      rec.notes.emplace_back("engine", sim::to_string(engine));
      rec.notes.emplace_back(
          "latency_us", std::to_string((seconds - occupancy) * 1e6));
    }
    const std::uint64_t span_id = ts->add_event(std::move(rec));
    obs::MetricsRegistry& m = ts->metrics();
    for (obs::SpanRecord& ev : fault_events) {
      const std::string kind_name = ev.name;
      ev.parent = span_id;
      ts->add_event(std::move(ev));
      m.inc("fault_events_total", {{"kind", kind_name}});
    }
    if (obs_retries != 0) {
      m.add("fault_retries", {}, static_cast<double>(obs_retries));
    }
    const std::string kind = to_string(link);
    m.inc("transfers_total", {{"kind", kind}});
    m.add("transfer_bytes", {{"kind", kind}}, static_cast<double>(bytes));
    m.add("transfer_seconds", {{"kind", kind}}, seconds);
    m.observe("transfer_size_bytes", {}, static_cast<double>(bytes),
              obs::MetricsRegistry::byte_bounds());
  }
  return r;
}

}  // namespace mgs::topo
