#pragma once
/// \file transfer.hpp
/// Device-to-device copies over the cluster's links, with simulated-time
/// accounting. This is the CUDA side of the paper's communication story:
/// cudaMemcpyPeer over a shared PCIe network, or a D2H+H2D staging pair
/// when the GPUs sit on different PCIe networks of the same node.
/// Inter-node traffic normally goes through mgs::msg (MPI), but a raw
/// GPUDirect-RDMA copy is also provided.
///
/// Resilience: when the cluster has a sim::FaultInjector attached, every
/// copy runs an attempt loop -- transient failures retry with exponential
/// backoff (retries cost modeled time), attempts beyond the plan's
/// per-message timeout are abandoned and retried, a down P2P link is
/// rerouted through host staging, and corrupted payloads are caught by a
/// checksum comparison and re-transferred. Exhausting the retry budget or
/// touching a down device raises TransferError; nothing is ever silently
/// wrong. Without an injector the legacy single-attempt path runs
/// unchanged (bit-identical modeled times).

#include <algorithm>
#include <cstdint>

#include "mgs/sim/fault.hpp"
#include "mgs/sim/timeline.hpp"
#include "mgs/simt/stream.hpp"
#include "mgs/topo/topology.hpp"

namespace mgs::topo {

/// Typed error for a copy that could not be completed: a down endpoint, a
/// down link with no alternate route, or a retry budget exhausted by
/// transient failures / timeouts.
class TransferError : public util::Error {
 public:
  TransferError(const std::string& what, int src_dev, int dst_dev)
      : util::Error(what), src_dev(src_dev), dst_dev(dst_dev) {}
  int src_dev;
  int dst_dev;
};

/// Outcome of one copy.
struct TransferResult {
  double seconds = 0.0;
  LinkType link = LinkType::kSelf;
  std::uint64_t bytes = 0;
};

/// Outcome of an asynchronous copy: the usual accounting plus a completion
/// event consumers can wait on (simt::Stream::wait).
struct AsyncResult {
  TransferResult result;
  simt::Event done;
};

/// Executes copies between device buffers (data moves immediately; clocks
/// advance by the modeled link time). Accumulates a per-link breakdown.
class TransferEngine {
 public:
  explicit TransferEngine(Cluster& cluster) : cluster_(&cluster) {}

  /// Copy `count` elements from src[src_off...] to dst[dst_off...].
  /// Start time is the later of the two device clocks (the copy engine
  /// needs both endpoints); both clocks advance to completion.
  template <typename T>
  TransferResult copy(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                      const simt::DeviceBuffer<T>& src, std::int64_t src_off,
                      std::int64_t count) {
    MGS_CHECK(count >= 0, "TransferEngine::copy: negative count");
    MGS_CHECK(src_off >= 0 && src_off + count <= src.size(),
              "TransferEngine::copy: source range out of bounds");
    MGS_CHECK(dst_off >= 0 && dst_off + count <= dst.size(),
              "TransferEngine::copy: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * sizeof(T);
    bool corrupt_once = false;
    const TransferResult r = account(src.device_id(), dst.device_id(), bytes,
                                     0, false, corrupt_once);

    const auto s = src.host_span();
    auto d = dst.host_span();
    for (std::int64_t i = 0; i < count; ++i) {
      d[static_cast<std::size_t>(dst_off + i)] =
          s[static_cast<std::size_t>(src_off + i)];
    }
    if (corrupt_once && count > 0) {
      verify_and_repair(d, dst_off, s, src_off, count);
    }
    return r;
  }

  /// Strided 2-D copy (cudaMemcpy2D): `rows` rows of `row_len` elements;
  /// row r reads src[src_off + r*src_stride ...] and writes
  /// dst[dst_off + r*dst_stride ...]. One link latency for the whole call
  /// plus a per-row DMA descriptor overhead -- with many small per-problem
  /// auxiliary rows (large G), the row overhead dominates, which is the
  /// paper's explanation for the W=8 drop in Figure 9.
  template <typename T>
  TransferResult copy_2d(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                         std::int64_t dst_stride,
                         const simt::DeviceBuffer<T>& src,
                         std::int64_t src_off, std::int64_t src_stride,
                         std::int64_t rows, std::int64_t row_len) {
    MGS_CHECK(rows >= 0 && row_len >= 0, "copy_2d: negative shape");
    if (rows == 0 || row_len == 0) return {};
    MGS_CHECK(src_off >= 0 &&
                  src_off + (rows - 1) * src_stride + row_len <= src.size(),
              "copy_2d: source range out of bounds");
    MGS_CHECK(dst_off >= 0 &&
                  dst_off + (rows - 1) * dst_stride + row_len <= dst.size(),
              "copy_2d: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(rows) * row_len * sizeof(T);
    bool corrupt_once = false;
    const TransferResult r =
        account(src.device_id(), dst.device_id(), bytes,
                static_cast<std::uint64_t>(rows), true, corrupt_once);

    const auto s = src.host_span();
    auto d = dst.host_span();
    for (std::int64_t row = 0; row < rows; ++row) {
      for (std::int64_t i = 0; i < row_len; ++i) {
        d[static_cast<std::size_t>(dst_off + row * dst_stride + i)] =
            s[static_cast<std::size_t>(src_off + row * src_stride + i)];
      }
    }
    if (corrupt_once) {
      // Verify/repair row by row (the checksum covers the strided ranges).
      for (std::int64_t row = 0; row < rows; ++row) {
        verify_and_repair(d, dst_off + row * dst_stride, s,
                          src_off + row * src_stride, row_len);
      }
    }
    return r;
  }

  /// Asynchronous copy (cudaMemcpyPeerAsync): serializes on the two
  /// endpoints' DMA engines instead of their compute clocks, so a copy can
  /// overlap with kernels running on either device. `ready` is an upstream
  /// dependency (typically the producer kernel's completion event): the
  /// copy cannot start before it. Data still moves immediately (functional
  /// substrate); only the modeled start/finish times differ from copy().
  /// The fault-retry loop is identical to the synchronous path.
  template <typename T>
  AsyncResult copy_async(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                         const simt::DeviceBuffer<T>& src,
                         std::int64_t src_off, std::int64_t count,
                         simt::Event ready = {}) {
    MGS_CHECK(count >= 0, "TransferEngine::copy_async: negative count");
    MGS_CHECK(src_off >= 0 && src_off + count <= src.size(),
              "TransferEngine::copy_async: source range out of bounds");
    MGS_CHECK(dst_off >= 0 && dst_off + count <= dst.size(),
              "TransferEngine::copy_async: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * sizeof(T);
    bool corrupt_once = false;
    double done = 0.0;
    const TransferResult r =
        account_on(src.device_id(), dst.device_id(), bytes, 0, false,
                   corrupt_once, sim::Engine::kDma, ready.seconds, &done);

    const auto s = src.host_span();
    auto d = dst.host_span();
    if (count > 0) {
      std::copy(s.begin() + src_off, s.begin() + (src_off + count),
                d.begin() + dst_off);
    }
    if (corrupt_once && count > 0) {
      verify_and_repair(d, dst_off, s, src_off, count);
    }
    return AsyncResult{r, simt::Event{done}};
  }

  /// Asynchronous strided 2-D copy; see copy_2d and copy_async.
  template <typename T>
  AsyncResult copy_2d_async(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                            std::int64_t dst_stride,
                            const simt::DeviceBuffer<T>& src,
                            std::int64_t src_off, std::int64_t src_stride,
                            std::int64_t rows, std::int64_t row_len,
                            simt::Event ready = {}) {
    MGS_CHECK(rows >= 0 && row_len >= 0, "copy_2d_async: negative shape");
    if (rows == 0 || row_len == 0) return AsyncResult{{}, ready};
    MGS_CHECK(src_off >= 0 &&
                  src_off + (rows - 1) * src_stride + row_len <= src.size(),
              "copy_2d_async: source range out of bounds");
    MGS_CHECK(dst_off >= 0 &&
                  dst_off + (rows - 1) * dst_stride + row_len <= dst.size(),
              "copy_2d_async: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(rows) * row_len * sizeof(T);
    bool corrupt_once = false;
    double done = 0.0;
    const TransferResult r =
        account_on(src.device_id(), dst.device_id(), bytes,
                   static_cast<std::uint64_t>(rows), true, corrupt_once,
                   sim::Engine::kDma, ready.seconds, &done);

    const auto s = src.host_span();
    auto d = dst.host_span();
    for (std::int64_t row = 0; row < rows; ++row) {
      const auto sb = s.begin() + (src_off + row * src_stride);
      std::copy(sb, sb + row_len, d.begin() + (dst_off + row * dst_stride));
    }
    if (corrupt_once) {
      for (std::int64_t row = 0; row < rows; ++row) {
        verify_and_repair(d, dst_off + row * dst_stride, s,
                          src_off + row * src_stride, row_len);
      }
    }
    return AsyncResult{r, simt::Event{done}};
  }

  /// Per-link-type accumulated seconds ("p2p", "host-staged", ...).
  const sim::Breakdown& breakdown() const { return breakdown_; }
  void reset_breakdown() { breakdown_ = sim::Breakdown{}; }

  /// Resilience-cost counters (retries, reroutes, ...). All zero when no
  /// injector is attached to the cluster.
  const sim::FaultCounters& fault_counters() const { return faults_seen_; }
  void reset_fault_counters() { faults_seen_ = sim::FaultCounters{}; }

  /// Modeled duration of moving `bytes` over the link between the two
  /// GPUs, without moving data (used for planning / what-if queries).
  /// Fault-oblivious: reroutes, retries and stragglers are runtime costs.
  double link_time(int src_dev, int dst_dev, std::uint64_t bytes) const;
  /// Same for a 2-D copy of `rows` rows totaling `bytes`.
  double link_time_2d(int src_dev, int dst_dev, std::uint64_t bytes,
                      std::uint64_t rows) const;
  /// Fixed (payload-independent) latency of the link between the two
  /// GPUs: the portion of a transfer's duration that pipelines away when
  /// copies queue back-to-back on a DMA engine.
  double link_latency(int src_dev, int dst_dev) const;

 private:
  /// Single timed-and-clocked accounting path behind copy/copy_2d: picks
  /// the (possibly rerouted) link, runs the retry loop when an injector is
  /// attached, advances both device clocks, and reports whether the final
  /// payload must be corrupted-then-repaired by the caller.
  TransferResult account(int src_dev, int dst_dev, std::uint64_t bytes,
                         std::uint64_t rows, bool is_2d, bool& corrupt_once);

  /// Engine-parameterized core behind account() and the *_async entry
  /// points. `engine` selects which per-device clocks the copy serializes
  /// on (compute = legacy synchronous semantics, DMA = overlapped);
  /// `earliest_start` is an additional lower bound on the start time
  /// (an upstream completion event). `completed_at`, when non-null,
  /// receives the absolute completion time.
  TransferResult account_on(int src_dev, int dst_dev, std::uint64_t bytes,
                            std::uint64_t rows, bool is_2d,
                            bool& corrupt_once, sim::Engine engine,
                            double earliest_start, double* completed_at);

  /// Time of `bytes` over a specific link class (reroutes pick their
  /// class explicitly; link_time resolves the class from the topology).
  double time_on_link(LinkType link, std::uint64_t bytes) const;
  double time_on_link_2d(LinkType link, std::uint64_t bytes,
                         std::uint64_t rows) const;
  /// Fixed latency term of time_on_link for one link class.
  double latency_of(LinkType link) const;

  /// Inject one corrupted element into the delivered range, detect it by
  /// checksum comparison against the source, and re-copy (the modeled
  /// re-transfer time was already charged by account()).
  template <typename T>
  void verify_and_repair(std::span<T> d, std::int64_t dst_off,
                         std::span<const T> s, std::int64_t src_off,
                         std::int64_t count) {
    if (count <= 0) return;
    // Simulated in-flight corruption: flip a bit in the middle element.
    auto& victim = d[static_cast<std::size_t>(dst_off + count / 2)];
    victim = corrupt_element(victim);
    std::uint64_t src_sum = 0, dst_sum = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      src_sum = mix_checksum(src_sum, s[static_cast<std::size_t>(src_off + i)]);
      dst_sum = mix_checksum(dst_sum, d[static_cast<std::size_t>(dst_off + i)]);
    }
    if (src_sum != dst_sum) {
      for (std::int64_t i = 0; i < count; ++i) {
        d[static_cast<std::size_t>(dst_off + i)] =
            s[static_cast<std::size_t>(src_off + i)];
      }
    }
  }

  template <typename T>
  static T corrupt_element(T v) {
    unsigned char* bytes = reinterpret_cast<unsigned char*>(&v);
    bytes[0] = static_cast<unsigned char>(bytes[0] ^ 0x40u);
    return v;
  }

  template <typename T>
  static std::uint64_t mix_checksum(std::uint64_t acc, const T& v) {
    const unsigned char* b = reinterpret_cast<const unsigned char*>(&v);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      acc = acc * 1099511628211ull + b[i];  // FNV-style rolling sum
    }
    return acc;
  }

  Cluster* cluster_;
  sim::Breakdown breakdown_;
  sim::FaultCounters faults_seen_;
};

}  // namespace mgs::topo
