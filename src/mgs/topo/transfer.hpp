#pragma once
/// \file transfer.hpp
/// Device-to-device copies over the cluster's links, with simulated-time
/// accounting. This is the CUDA side of the paper's communication story:
/// cudaMemcpyPeer over a shared PCIe network, or a D2H+H2D staging pair
/// when the GPUs sit on different PCIe networks of the same node.
/// Inter-node traffic normally goes through mgs::msg (MPI), but a raw
/// GPUDirect-RDMA copy is also provided.

#include <cstdint>

#include "mgs/sim/timeline.hpp"
#include "mgs/topo/topology.hpp"

namespace mgs::topo {

/// Outcome of one copy.
struct TransferResult {
  double seconds = 0.0;
  LinkType link = LinkType::kSelf;
  std::uint64_t bytes = 0;
};

/// Executes copies between device buffers (data moves immediately; clocks
/// advance by the modeled link time). Accumulates a per-link breakdown.
class TransferEngine {
 public:
  explicit TransferEngine(Cluster& cluster) : cluster_(&cluster) {}

  /// Copy `count` elements from src[src_off...] to dst[dst_off...].
  /// Start time is the later of the two device clocks (the copy engine
  /// needs both endpoints); both clocks advance to completion.
  template <typename T>
  TransferResult copy(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                      const simt::DeviceBuffer<T>& src, std::int64_t src_off,
                      std::int64_t count) {
    MGS_CHECK(count >= 0, "TransferEngine::copy: negative count");
    MGS_CHECK(src_off >= 0 && src_off + count <= src.size(),
              "TransferEngine::copy: source range out of bounds");
    MGS_CHECK(dst_off >= 0 && dst_off + count <= dst.size(),
              "TransferEngine::copy: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * sizeof(T);
    const TransferResult r =
        account(src.device_id(), dst.device_id(), bytes);

    const auto s = src.host_span();
    auto d = dst.host_span();
    for (std::int64_t i = 0; i < count; ++i) {
      d[static_cast<std::size_t>(dst_off + i)] =
          s[static_cast<std::size_t>(src_off + i)];
    }
    return r;
  }

  /// Strided 2-D copy (cudaMemcpy2D): `rows` rows of `row_len` elements;
  /// row r reads src[src_off + r*src_stride ...] and writes
  /// dst[dst_off + r*dst_stride ...]. One link latency for the whole call
  /// plus a per-row DMA descriptor overhead -- with many small per-problem
  /// auxiliary rows (large G), the row overhead dominates, which is the
  /// paper's explanation for the W=8 drop in Figure 9.
  template <typename T>
  TransferResult copy_2d(simt::DeviceBuffer<T>& dst, std::int64_t dst_off,
                         std::int64_t dst_stride,
                         const simt::DeviceBuffer<T>& src,
                         std::int64_t src_off, std::int64_t src_stride,
                         std::int64_t rows, std::int64_t row_len) {
    MGS_CHECK(rows >= 0 && row_len >= 0, "copy_2d: negative shape");
    if (rows == 0 || row_len == 0) return {};
    MGS_CHECK(src_off >= 0 &&
                  src_off + (rows - 1) * src_stride + row_len <= src.size(),
              "copy_2d: source range out of bounds");
    MGS_CHECK(dst_off >= 0 &&
                  dst_off + (rows - 1) * dst_stride + row_len <= dst.size(),
              "copy_2d: destination range out of bounds");

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(rows) * row_len * sizeof(T);
    const TransferResult r =
        account_2d(src.device_id(), dst.device_id(), bytes,
                   static_cast<std::uint64_t>(rows));

    const auto s = src.host_span();
    auto d = dst.host_span();
    for (std::int64_t row = 0; row < rows; ++row) {
      for (std::int64_t i = 0; i < row_len; ++i) {
        d[static_cast<std::size_t>(dst_off + row * dst_stride + i)] =
            s[static_cast<std::size_t>(src_off + row * src_stride + i)];
      }
    }
    return r;
  }

  /// Per-link-type accumulated seconds ("p2p", "host-staged", ...).
  const sim::Breakdown& breakdown() const { return breakdown_; }
  void reset_breakdown() { breakdown_ = sim::Breakdown{}; }

  /// Modeled duration of moving `bytes` over the link between the two
  /// GPUs, without moving data (used for planning / what-if queries).
  double link_time(int src_dev, int dst_dev, std::uint64_t bytes) const;
  /// Same for a 2-D copy of `rows` rows totaling `bytes`.
  double link_time_2d(int src_dev, int dst_dev, std::uint64_t bytes,
                      std::uint64_t rows) const;

 private:
  TransferResult account(int src_dev, int dst_dev, std::uint64_t bytes);
  TransferResult account_2d(int src_dev, int dst_dev, std::uint64_t bytes,
                            std::uint64_t rows);

  Cluster* cluster_;
  sim::Breakdown breakdown_;
};

}  // namespace mgs::topo
