#include "mgs/topo/topology.hpp"

#include <algorithm>

#include "mgs/sim/fault.hpp"

namespace mgs::topo {

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::kSelf:
      return "self";
    case LinkType::kP2P:
      return "p2p";
    case LinkType::kHostStaged:
      return "host-staged";
    case LinkType::kInterNode:
      return "inter-node";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  MGS_REQUIRE(config_.nodes >= 1, "cluster needs at least one node");
  MGS_REQUIRE(config_.networks_per_node >= 1 && config_.gpus_per_network >= 1,
              "cluster node shape must be positive");
  devices_.reserve(static_cast<std::size_t>(config_.total_gpus()));
  for (int id = 0; id < config_.total_gpus(); ++id) {
    devices_.push_back(std::make_unique<simt::Device>(id, config_.gpu));
  }
}

simt::Device& Cluster::device(int global_id) {
  MGS_CHECK(global_id >= 0 && global_id < num_devices(),
            "device id out of range");
  return *devices_[static_cast<std::size_t>(global_id)];
}

const simt::Device& Cluster::device(int global_id) const {
  MGS_CHECK(global_id >= 0 && global_id < num_devices(),
            "device id out of range");
  return *devices_[static_cast<std::size_t>(global_id)];
}

GpuLocation Cluster::location(int global_id) const {
  MGS_CHECK(global_id >= 0 && global_id < num_devices(),
            "device id out of range");
  GpuLocation loc;
  const int per_node = config_.gpus_per_node();
  loc.node = global_id / per_node;
  const int within = global_id % per_node;
  loc.network = within / config_.gpus_per_network;
  loc.slot = within % config_.gpus_per_network;
  return loc;
}

int Cluster::global_id(int node, int network, int slot) const {
  MGS_CHECK(node >= 0 && node < config_.nodes, "node out of range");
  MGS_CHECK(network >= 0 && network < config_.networks_per_node,
            "network out of range");
  MGS_CHECK(slot >= 0 && slot < config_.gpus_per_network, "slot out of range");
  return (node * config_.networks_per_node + network) *
             config_.gpus_per_network +
         slot;
}

LinkType Cluster::link_between(int a, int b) const {
  if (a == b) return LinkType::kSelf;
  const GpuLocation la = location(a);
  const GpuLocation lb = location(b);
  if (la.node != lb.node) return LinkType::kInterNode;
  if (la.network != lb.network) return LinkType::kHostStaged;
  return LinkType::kP2P;
}

void Cluster::reset_clocks() {
  for (auto& d : devices_) {
    d->clock().reset();
    d->dma_clock().reset();
  }
}

double Cluster::makespan(const std::vector<int>& device_ids) const {
  double t = 0.0;
  for (int id : device_ids) t = std::max(t, device(id).clock().now());
  return t;
}

std::vector<int> Cluster::alive_devices() const {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(num_devices()));
  for (int id = 0; id < num_devices(); ++id) {
    if (faults_ == nullptr || !faults_->device_is_down(id)) {
      alive.push_back(id);
    }
  }
  return alive;
}

Cluster tsubame_kfc_cluster(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.networks_per_node = 2;
  cfg.gpus_per_network = 4;
  cfg.gpu = sim::k80_spec();
  cfg.links = LinkSpec{};
  return Cluster(cfg);
}

Cluster single_gpu_cluster(const sim::DeviceSpec& gpu) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.networks_per_node = 1;
  cfg.gpus_per_network = 1;
  cfg.gpu = gpu;
  cfg.links = LinkSpec{};
  return Cluster(cfg);
}

Cluster dgx1_like_cluster(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.networks_per_node = 1;   // one NVLink fabric
  cfg.gpus_per_network = 8;
  cfg.gpu = sim::pascal_spec();
  cfg.links.p2p_bandwidth_gbps = 18.0;  // NVLink 1.0 per direction
  cfg.links.p2p_latency_us = 2.0;
  cfg.links.host_bandwidth_gbps = 10.0;  // PCIe gen3 staging (unused
  cfg.links.host_latency_us = 15.0;      // within a node: Y = 1)
  cfg.links.ib_bandwidth_gbps = 11.0;    // EDR
  cfg.links.ib_latency_us = 15.0;
  cfg.links.mpi_overhead_us = 20.0;
  cfg.links.row_overhead_us = 0.05;
  return Cluster(cfg);
}

}  // namespace mgs::topo
