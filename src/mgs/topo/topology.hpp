#pragma once
/// \file topology.hpp
/// Multi-GPU / multi-node hardware description (the paper's Figure 2 and
/// Table 1): M nodes, each with Y_max PCIe networks of V_max GPUs. The
/// Cluster owns the simulated Devices and answers "what kind of link
/// connects GPU a and GPU b", which is the fact Premise 4 is built on.

#include <memory>
#include <string>
#include <vector>

#include "mgs/sim/device_spec.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/util/check.hpp"

namespace mgs::sim {
class FaultInjector;
}

namespace mgs::topo {

/// Link performance characteristics (first-order alpha-beta models).
struct LinkSpec {
  // PCIe peer-to-peer within one PCIe network (no host involvement).
  double p2p_bandwidth_gbps = 10.0;
  double p2p_latency_us = 8.0;
  // Staged through host memory (GPUs on different PCIe networks of the
  // same node): two hops, each at host bandwidth.
  double host_bandwidth_gbps = 5.5;
  double host_latency_us = 20.0;  ///< per hop
  // InfiniBand FDR with GPUDirect RDMA between nodes.
  double ib_bandwidth_gbps = 5.6;
  double ib_latency_us = 25.0;
  // Software overhead added per MPI message/collective step.
  double mpi_overhead_us = 30.0;
  // Per-row overhead for strided 2-D copies between the per-problem
  // auxiliary rows. Scaled per link class in the transfer engine: P2P
  // rows are asynchronous peer writes that pipeline on the PCIe fabric
  // (tiny cost), while host-staged rows pay a host round trip per hop.
  double row_overhead_us = 0.1;
};

/// How two GPUs are connected.
enum class LinkType { kSelf, kP2P, kHostStaged, kInterNode };

const char* to_string(LinkType t);

/// Shape of the machine.
struct ClusterConfig {
  int nodes = 1;
  int networks_per_node = 2;   ///< Y_max
  int gpus_per_network = 4;    ///< V_max
  sim::DeviceSpec gpu;         ///< every GPU identical (homogeneous cluster)
  LinkSpec links;

  int gpus_per_node() const { return networks_per_node * gpus_per_network; }
  int total_gpus() const { return nodes * gpus_per_node(); }
};

/// Global GPU id decomposed into its place in the machine.
struct GpuLocation {
  int node = 0;
  int network = 0;  ///< PCIe network within the node
  int slot = 0;     ///< position within the network
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  int num_devices() const { return static_cast<int>(devices_.size()); }

  simt::Device& device(int global_id);
  const simt::Device& device(int global_id) const;

  GpuLocation location(int global_id) const;
  /// Inverse of location().
  int global_id(int node, int network, int slot) const;

  /// The link class connecting two GPUs (kSelf when a == b).
  LinkType link_between(int a, int b) const;

  /// Reset all device clocks to zero (start of a simulated run).
  void reset_clocks();
  /// Latest clock across a set of devices; empty set -> 0.
  double makespan(const std::vector<int>& device_ids) const;

  /// Attach (or detach with nullptr) a fault injector. The injector is
  /// borrowed -- it must outlive the cluster while attached -- and is
  /// consulted by every TransferEngine and Communicator built over this
  /// cluster, and by the scan executors when placing a run. No injector
  /// (the default) keeps every path bit-identical to pre-fault behavior.
  void set_fault_injector(sim::FaultInjector* faults) {
    faults_ = faults;
    for (auto& dev : devices_) dev->set_fault_injector(faults);
  }
  sim::FaultInjector* fault_injector() const { return faults_; }

  /// Devices not marked down by the attached injector (all of them when
  /// no injector is attached).
  std::vector<int> alive_devices() const;

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<simt::Device>> devices_;
  sim::FaultInjector* faults_ = nullptr;
};

/// The paper's test platform (Table 1): per node, 2 PCIe networks with 4
/// logical K80 GPUs each; InfiniBand FDR between nodes.
Cluster tsubame_kfc_cluster(int nodes = 1);

/// Degenerate one-GPU "cluster" (1 node, 1 network, 1 slot). Lets the
/// single-GPU entry points (easy scan, Scan-SP executors) share the
/// cluster-based ScanContext machinery without special-casing.
Cluster single_gpu_cluster(const sim::DeviceSpec& gpu);

/// A DGX-1-class node (what replaced the paper's platform a year later):
/// 8 Pascal GPUs on one NVLink fabric (modeled as a single "network" with
/// a much faster P2P link), EDR InfiniBand between nodes. Useful for
/// what-if studies: with no second PCIe network, Scan-MP-PC degenerates
/// and Scan-MPS never stages through the host.
Cluster dgx1_like_cluster(int nodes = 1);

}  // namespace mgs::topo
