#include "mgs/topo/config.hpp"

#include <cstdlib>
#include <sstream>

#include "mgs/sim/device_spec.hpp"
#include "mgs/util/check.hpp"

namespace mgs::topo {

namespace {

double parse_number(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  MGS_REQUIRE(end != nullptr && *end == '\0',
              "cluster config: key '" + key + "' expects a number, got '" +
                  value + "'");
  return v;
}

int parse_int(const std::string& key, const std::string& value) {
  const double v = parse_number(key, value);
  MGS_REQUIRE(v >= 1 && v == static_cast<int>(v),
              "cluster config: key '" + key + "' expects a positive integer");
  return static_cast<int>(v);
}

}  // namespace

ClusterConfig parse_cluster_config(const std::string& text) {
  ClusterConfig cfg;
  cfg.gpu = sim::k80_spec();

  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    MGS_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                "cluster config: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "nodes") {
      cfg.nodes = parse_int(key, value);
    } else if (key == "networks") {
      cfg.networks_per_node = parse_int(key, value);
    } else if (key == "gpus") {
      cfg.gpus_per_network = parse_int(key, value);
    } else if (key == "gpu") {
      cfg.gpu = sim::spec_by_name(value);
    } else if (key == "p2p-gbps") {
      cfg.links.p2p_bandwidth_gbps = parse_number(key, value);
    } else if (key == "p2p-us") {
      cfg.links.p2p_latency_us = parse_number(key, value);
    } else if (key == "host-gbps") {
      cfg.links.host_bandwidth_gbps = parse_number(key, value);
    } else if (key == "host-us") {
      cfg.links.host_latency_us = parse_number(key, value);
    } else if (key == "ib-gbps") {
      cfg.links.ib_bandwidth_gbps = parse_number(key, value);
    } else if (key == "ib-us") {
      cfg.links.ib_latency_us = parse_number(key, value);
    } else if (key == "mpi-us") {
      cfg.links.mpi_overhead_us = parse_number(key, value);
    } else if (key == "row-us") {
      cfg.links.row_overhead_us = parse_number(key, value);
    } else {
      throw util::Error("cluster config: unknown key '" + key + "'");
    }
  }

  MGS_REQUIRE(cfg.links.p2p_bandwidth_gbps > 0 &&
                  cfg.links.host_bandwidth_gbps > 0 &&
                  cfg.links.ib_bandwidth_gbps > 0,
              "cluster config: bandwidths must be positive");
  MGS_REQUIRE(cfg.links.p2p_latency_us >= 0 &&
                  cfg.links.host_latency_us >= 0 &&
                  cfg.links.ib_latency_us >= 0 &&
                  cfg.links.mpi_overhead_us >= 0 &&
                  cfg.links.row_overhead_us >= 0,
              "cluster config: latencies must be non-negative");
  return cfg;
}

std::string describe_cluster_config(const ClusterConfig& config) {
  std::ostringstream os;
  std::string gpu = "k80";
  if (config.gpu.cc_major == 5) gpu = "maxwell";
  if (config.gpu.cc_major == 6) gpu = "pascal";
  os << "nodes=" << config.nodes << " networks=" << config.networks_per_node
     << " gpus=" << config.gpus_per_network << " gpu=" << gpu
     << " p2p-gbps=" << config.links.p2p_bandwidth_gbps
     << " p2p-us=" << config.links.p2p_latency_us
     << " host-gbps=" << config.links.host_bandwidth_gbps
     << " host-us=" << config.links.host_latency_us
     << " ib-gbps=" << config.links.ib_bandwidth_gbps
     << " ib-us=" << config.links.ib_latency_us
     << " mpi-us=" << config.links.mpi_overhead_us
     << " row-us=" << config.links.row_overhead_us;
  return os.str();
}

}  // namespace mgs::topo
