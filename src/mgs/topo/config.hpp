#pragma once
/// \file config.hpp
/// Textual cluster description, so benchmarks and downstream users can
/// model machines other than the paper's TSUBAME-KFC node without
/// recompiling. The format is whitespace-separated key=value pairs:
///
///   nodes=2 networks=2 gpus=4 gpu=k80
///   p2p-gbps=10 p2p-us=8 host-gbps=5.5 host-us=20
///   ib-gbps=5.6 ib-us=25 mpi-us=30 row-us=0.1
///
/// Unknown keys are errors (so sweep scripts fail loudly); every key is
/// optional and defaults to the paper's platform.

#include <string>

#include "mgs/topo/topology.hpp"

namespace mgs::topo {

/// Parse a cluster description; throws util::Error with the offending
/// token on malformed input.
ClusterConfig parse_cluster_config(const std::string& text);

/// Inverse of parse_cluster_config (round-trips through the parser).
std::string describe_cluster_config(const ClusterConfig& config);

}  // namespace mgs::topo
