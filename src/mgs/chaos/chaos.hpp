#pragma once
/// \file chaos.hpp
/// Deterministic chaos harness for the scan stack. A campaign samples
/// scenarios across (proposal x dtype/op x shape x placement x pipeline x
/// FaultPlan) from a seeded generator, runs each against the simulated
/// cluster, and checks the invariants that must hold under ANY injected
/// fault schedule:
///
///  1. correctness -- the scan either matches the serial reference
///     bit-for-bit or raises a typed util::Error (never a silently wrong
///     result); a healthy scenario must succeed outright;
///  2. telescoping -- the per-stage breakdown entries sum exactly to the
///     reported makespan (the critical-path accounting has no holes);
///  3. report consistency -- an empty FaultPlan yields a pristine
///     FaultReport, and mid-run resumes imply a degraded report;
///  4. determinism -- replaying the scenario from fresh state reproduces
///     the same bits, the same makespan, and the same fault summary;
///  5. span consistency -- one "Recovery" stage span per recorded
///     resumed_stages entry.
///
/// On a violation the harness greedily shrinks the scenario to a minimal
/// reproducer, printable as a one-line spec whose `faults=` tail pastes
/// directly into any `--faults` flag. Everything is seeded: the same
/// (seed, index) always names the same scenario, so a repro line in a CI
/// log replays anywhere.

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "mgs/core/dtype.hpp"
#include "mgs/core/op.hpp"
#include "mgs/core/plan.hpp"

namespace mgs::chaos {

/// One sampled point of the campaign space. Fully describes a run:
/// cluster shape, proposal placement, element type/operator, pipeline
/// override, and the fault schedule (empty string = healthy run).
struct Scenario {
  std::uint64_t seed = 0;  ///< campaign seed this scenario was drawn from
  int index = 0;           ///< scenario index within the campaign
  std::string executor = "Scan-MPS";
  core::DType dtype = core::DType::kI32;
  core::OpTag op = core::OpTag::kPlus;
  core::ScanKind kind = core::ScanKind::kInclusive;
  std::int64_t n = 4096;  ///< elements per problem
  std::int64_t g = 2;     ///< problems in the batch
  int nodes = 1;          ///< tsubame_kfc_cluster(nodes)
  int w = 0;              ///< MPS / multinode GPUs per node (0 = derive)
  int y = 0;              ///< MP-PC networks per node
  int v = 0;              ///< MP-PC GPUs per network
  int m = 0;              ///< multinode node count
  core::PipelineMode pipeline = core::PipelineMode::kAuto;
  int waves = 0;          ///< 0 = planner's pick
  bool segmented = false;  ///< run through the SegmentedScan wrapper
  std::string faults;     ///< sim::parse_fault_plan spec; "" = none

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Render a scenario as a single replayable line:
///   "exec=Scan-MPS;dtype=i32;...;faults=device-down:dev=3"
/// The faults spec is always the last key (its value embeds ';' and '=').
std::string to_string(const Scenario& s);

/// Inverse of to_string; throws util::Error on malformed lines.
Scenario parse_scenario(const std::string& line);

/// Deterministic scenario generator: the same (seed, index) always
/// produces the same scenario, independent of platform or prior draws.
Scenario sample_scenario(std::uint64_t seed, int index);

/// Run the scenario (twice, from fresh state, for the determinism check)
/// and evaluate every invariant. Returns std::nullopt when all hold, or a
/// human-readable description of the first violation.
std::optional<std::string> check_scenario(const Scenario& s);

/// Greedily shrink `s` toward a minimal scenario for which `fails` still
/// returns true: drop fault events one by one, simplify the pipeline,
/// shrink the shape and placement, collapse dtype/op/kind to the
/// defaults. `fails(s)` must be true on entry; the result is the smallest
/// still-failing scenario found within `max_evals` predicate evaluations.
Scenario shrink(const Scenario& s,
                const std::function<bool(const Scenario&)>& fails,
                int max_evals = 60);

/// One campaign violation: the scenario as sampled, its shrunk
/// reproducer, and the invariant it broke.
struct Violation {
  Scenario scenario;
  Scenario shrunk;
  std::string what;
};

struct CampaignResult {
  int total = 0;     ///< scenarios run
  int healthy = 0;   ///< scenarios with an empty fault plan
  int faulted = 0;   ///< scenarios that injected at least one event
  int rejected = 0;  ///< faulted runs that raised a typed error (allowed)
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Run `count` scenarios sampled from `seed`. Each violation is shrunk
/// before being recorded. `log` (optional) receives progress lines and
/// the repro spec of every violation.
CampaignResult run_campaign(std::uint64_t seed, int count,
                            std::ostream* log = nullptr);

}  // namespace mgs::chaos
