#include "mgs/chaos/chaos.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/executor.hpp"
#include "mgs/core/executor_registry.hpp"
#include "mgs/core/segmented_context.hpp"
#include "mgs/msg/comm.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/topo/transfer.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/random.hpp"

namespace mgs::chaos {

namespace {

// ------------------------------------------------------------ serialization

const char* to_string(core::PipelineMode m) {
  switch (m) {
    case core::PipelineMode::kSync: return "sync";
    case core::PipelineMode::kOverlap: return "overlap";
    default: return "auto";
  }
}

core::PipelineMode parse_pipeline(const std::string& s) {
  if (s == "auto") return core::PipelineMode::kAuto;
  if (s == "sync") return core::PipelineMode::kSync;
  if (s == "overlap") return core::PipelineMode::kOverlap;
  throw util::Error("chaos: unknown pipeline mode '" + s + "'");
}

core::ScanKind parse_kind(const std::string& s) {
  if (s == "inclusive") return core::ScanKind::kInclusive;
  if (s == "exclusive") return core::ScanKind::kExclusive;
  throw util::Error("chaos: unknown scan kind '" + s + "'");
}

// --------------------------------------------------------------- the runner

/// Everything one execution of a scenario produced, in comparable form.
struct RunOutcome {
  bool threw = false;
  std::string error;  ///< what() when threw
  std::vector<unsigned char> bits;  ///< output bytes when !threw
  bool reference_match = false;
  core::RunResult result;
  std::size_t recovery_spans = 0;  ///< "Recovery" kStage spans recorded
};

/// Deterministic input: small-magnitude values (|x| < 7) keep float
/// partial sums exactly representable, so scans are association-free and
/// the bit-identity invariant holds for every dtype (test_dtype's trick).
template <typename T>
std::vector<T> scenario_data(const Scenario& s) {
  const auto raw = util::random_i32(
      static_cast<std::size_t>(s.n * s.g),
      s.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(s.index + 1)));
  std::vector<T> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = static_cast<T>(raw[i] % 7);
  }
  return out;
}

/// Deterministic segment heads for a segmented scenario: an independent
/// stream from the data values, ~1/16 head probability (segments average
/// a few dozen elements, so every sampled shape sees multi-segment and
/// multi-wave traffic).
template <typename T>
std::vector<T> scenario_flags(const Scenario& s) {
  const auto raw = util::random_i32(
      static_cast<std::size_t>(s.n * s.g),
      s.seed ^ 0xd6e8feb86659fd93ull ^
          (0x94d049bb133111ebull * static_cast<std::uint64_t>(s.index + 1)));
  std::vector<T> flags(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    flags[i] = (raw[i] & 15) == 0 ? T{1} : T{0};
  }
  return flags;
}

/// Serial segmented reference, mirroring SegmentedScan's head convention:
/// element i restarts when it opens a sequence (i % n == 0) or its flag
/// is set; exclusive heads yield Op::identity(), everything else the
/// inclusive value of the left neighbor.
template <typename T, typename Op>
std::vector<T> reference_segmented(const std::vector<T>& values,
                                   const std::vector<T>& flags,
                                   std::int64_t n, core::ScanKind kind) {
  const auto total = static_cast<std::int64_t>(values.size());
  std::vector<T> incl(values.size());
  T running = Op::identity();
  for (std::int64_t i = 0; i < total; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const bool head = i % n == 0 || flags[u] != T{0};
    running = head ? values[u] : Op{}(running, values[u]);
    incl[u] = running;
  }
  if (kind == core::ScanKind::kInclusive) return incl;
  std::vector<T> excl(values.size());
  for (std::int64_t i = 0; i < total; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const bool head = i % n == 0 || flags[u] != T{0};
    excl[u] = head ? Op::identity() : incl[u - 1];
  }
  return excl;
}

template <typename T, typename Op>
RunOutcome run_typed(const Scenario& s) {
  RunOutcome o;
  auto cluster = topo::tsubame_kfc_cluster(s.nodes);
  std::unique_ptr<sim::FaultInjector> fi;
  if (!s.faults.empty()) {
    fi = std::make_unique<sim::FaultInjector>(sim::parse_fault_plan(s.faults));
    cluster.set_fault_injector(fi.get());
  }
  obs::TraceSession ts;
  core::ScanContext ctx(cluster);
  core::ExecutorParams p;
  p.w = s.w;
  p.y = s.y;
  p.v = s.v;
  p.m = s.m;
  p.pipeline = s.pipeline;
  p.waves = s.waves;
  p.dtype = *core::dtype_of_v<T>;
  p.op = Op::name() == std::string("plus") ? core::OpTag::kPlus
         : Op::name() == std::string("max") ? core::OpTag::kMax
                                            : core::OpTag::kMin;
  const auto data = scenario_data<T>(s);
  std::vector<T> out(data.size());
  std::vector<T> ref;
  try {
    if (s.segmented) {
      const auto flags = scenario_flags<T>(s);
      core::SegmentedScan<T, Op> seg(ctx, s.executor, p);
      seg.prepare(s.n, s.g);
      o.result = seg.run(std::span<const T>(data), std::span<const T>(flags),
                         std::span<T>(out), s.kind);
      ref = reference_segmented<T, Op>(data, flags, s.n, s.kind);
    } else {
      auto ex = core::make_executor(s.executor, ctx, p);
      ex->prepare(s.n, s.g);
      o.result = ex->run(std::span<const T>(data), std::span<T>(out), s.kind);
      ref = baselines::reference_batch_scan<T, Op>(data, s.n, s.g, s.kind);
    }
  } catch (const std::exception& e) {
    o.threw = true;
    o.error = e.what();
    return o;
  }
  for (const auto& sp : ts.spans()) {
    if (sp.kind == obs::SpanKind::kStage && sp.name == "Recovery") {
      ++o.recovery_spans;
    }
  }
  o.reference_match = (out == ref);
  o.bits.resize(out.size() * sizeof(T));
  std::memcpy(o.bits.data(), out.data(), o.bits.size());
  return o;
}

template <typename T>
RunOutcome run_with_op(const Scenario& s) {
  switch (s.op) {
    case core::OpTag::kMax: return run_typed<T, core::Max<T>>(s);
    case core::OpTag::kMin: return run_typed<T, core::Min<T>>(s);
    default: return run_typed<T, core::Plus<T>>(s);
  }
}

RunOutcome run_scenario_once(const Scenario& s) {
  switch (s.dtype) {
    case core::DType::kF64: return run_with_op<double>(s);
    case core::DType::kF32: return run_with_op<float>(s);
    case core::DType::kI64: return run_with_op<std::int64_t>(s);
    default: return run_with_op<std::int32_t>(s);
  }
}

std::optional<std::string> check_impl(const Scenario& s, bool* rejected) {
  const RunOutcome a = run_scenario_once(s);
  const RunOutcome b = run_scenario_once(s);

  // Invariant 4: determinism -- a fresh replay reproduces everything.
  if (a.threw != b.threw) {
    return "nondeterministic: one replay threw ('" +
           (a.threw ? a.error : b.error) + "'), the other did not";
  }
  if (a.threw) {
    if (a.error != b.error) {
      return "nondeterministic error: '" + a.error + "' vs '" + b.error + "'";
    }
    // Invariant 1 (healthy half): a fault-free scenario must succeed.
    if (s.faults.empty()) {
      return "healthy scenario raised: " + a.error;
    }
    // Typed rejection under injected faults is an allowed outcome
    // (fail-stop beats silent corruption).
    if (rejected != nullptr) *rejected = true;
    return std::nullopt;
  }
  if (a.bits != b.bits) return "nondeterministic output bits across replays";
  if (a.result.seconds != b.result.seconds) {
    return "nondeterministic makespan: " + std::to_string(a.result.seconds) +
           " vs " + std::to_string(b.result.seconds);
  }
  if (a.result.faults.summary() != b.result.faults.summary()) {
    return "nondeterministic fault report: '" + a.result.faults.summary() +
           "' vs '" + b.result.faults.summary() + "'";
  }

  // Invariant 1: bit-identical to the serial reference.
  if (!a.reference_match) {
    return "result differs from the serial reference (silent corruption)";
  }

  // Invariant 2: the per-stage breakdown telescopes to the makespan.
  const double sum = a.result.breakdown.total();
  const double tol = 1e-12 + 1e-9 * std::abs(a.result.seconds);
  if (std::abs(sum - a.result.seconds) > tol) {
    return "breakdown does not telescope: sum=" + std::to_string(sum) +
           " vs seconds=" + std::to_string(a.result.seconds);
  }

  // Invariant 3: FaultReport consistent with what was injected.
  const auto& f = a.result.faults;
  if (s.faults.empty()) {
    if (f.any()) return "healthy run reported faults: " + f.summary();
    if (!f.resumed_stages.empty()) {
      return "healthy run recorded resumed stages";
    }
    if (a.recovery_spans != 0) return "healthy run recorded Recovery spans";
  }
  if (!f.resumed_stages.empty() && !f.degraded) {
    return "resumed_stages non-empty but the report is not degraded";
  }

  // Invariant 5: one Recovery stage span per recorded resume.
  if (a.recovery_spans != f.resumed_stages.size()) {
    return "span mismatch: " + std::to_string(a.recovery_spans) +
           " Recovery spans vs " + std::to_string(f.resumed_stages.size()) +
           " resumed_stages entries";
  }
  return std::nullopt;
}

// -------------------------------------------------------------- the sampler

/// splitmix64: tiny, high-quality, and addressable -- state is derived
/// from (seed, index) alone, so scenario i never depends on scenario i-1.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

template <typename T>
T pick(std::uint64_t& st, std::initializer_list<T> pool) {
  return pool.begin()[splitmix64(st) % pool.size()];
}

}  // namespace

std::string to_string(const Scenario& s) {
  std::ostringstream os;
  os << "exec=" << s.executor << ";dtype=" << core::to_string(s.dtype)
     << ";op=" << core::to_string(s.op) << ";kind=" << core::to_string(s.kind)
     << ";n=" << s.n << ";g=" << s.g << ";nodes=" << s.nodes << ";w=" << s.w
     << ";y=" << s.y << ";v=" << s.v << ";m=" << s.m
     << ";pipe=" << to_string(s.pipeline) << ";waves=" << s.waves
     << ";seed=" << s.seed << ";index=" << s.index;
  // Optional keys keep pre-existing repro lines byte-identical; faults
  // stays last (its value embeds ';' and '=').
  if (s.segmented) os << ";seg=1";
  if (!s.faults.empty()) os << ";faults=" << s.faults;
  return os.str();
}

Scenario parse_scenario(const std::string& line) {
  Scenario s;
  // The faults spec embeds ';' and '=', so it must be the final key: cut
  // it off first, then the head is plain key=value pairs.
  std::string head = line;
  const auto fpos = line.find("faults=");
  if (fpos != std::string::npos &&
      (fpos == 0 || line[fpos - 1] == ';')) {
    s.faults = line.substr(fpos + 7);
    head = line.substr(0, fpos == 0 ? 0 : fpos - 1);
  }
  std::istringstream is(head);
  std::string item;
  const auto to_i64 = [](const std::string& k,
                         const std::string& v) -> std::int64_t {
    try {
      std::size_t used = 0;
      const std::int64_t x = std::stoll(v, &used);
      MGS_REQUIRE(used == v.size(), "trailing junk");
      return x;
    } catch (const std::exception&) {
      throw util::Error("chaos: bad integer for '" + k + "': '" + v + "'");
    }
  };
  while (std::getline(is, item, ';')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    MGS_REQUIRE(eq != std::string::npos,
                "chaos: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "exec") s.executor = val;
    else if (key == "dtype") s.dtype = core::parse_dtype(val);
    else if (key == "op") s.op = core::parse_op(val);
    else if (key == "kind") s.kind = parse_kind(val);
    else if (key == "n") s.n = to_i64(key, val);
    else if (key == "g") s.g = to_i64(key, val);
    else if (key == "nodes") s.nodes = static_cast<int>(to_i64(key, val));
    else if (key == "w") s.w = static_cast<int>(to_i64(key, val));
    else if (key == "y") s.y = static_cast<int>(to_i64(key, val));
    else if (key == "v") s.v = static_cast<int>(to_i64(key, val));
    else if (key == "m") s.m = static_cast<int>(to_i64(key, val));
    else if (key == "pipe") s.pipeline = parse_pipeline(val);
    else if (key == "waves") s.waves = static_cast<int>(to_i64(key, val));
    else if (key == "seg") s.segmented = to_i64(key, val) != 0;
    else if (key == "seed")
      s.seed = static_cast<std::uint64_t>(to_i64(key, val));
    else if (key == "index") s.index = static_cast<int>(to_i64(key, val));
    else throw util::Error("chaos: unknown scenario key '" + key + "'");
  }
  MGS_REQUIRE(s.n > 0 && s.g > 0 && s.nodes > 0,
              "chaos: scenario needs positive n/g/nodes");
  // Catch proposal-name typos at parse time, not deep inside the run.
  const bool known = s.executor == "Scan-SP" || s.executor == "Scan-MPS" ||
                     s.executor == "Scan-MPS-direct" ||
                     s.executor == "Scan-MP-PC" ||
                     s.executor == "Scan-MPS-multinode";
  MGS_REQUIRE(known, "chaos: unknown executor '" + s.executor + "'");
  return s;
}

Scenario sample_scenario(std::uint64_t seed, int index) {
  std::uint64_t st =
      seed ^ (0xbf58476d1ce4e5b9ull * static_cast<std::uint64_t>(index + 1));
  splitmix64(st);  // decorrelate low-entropy (seed, index) pairs

  Scenario s;
  s.seed = seed;
  s.index = index;

  // Placement: every proposal, with shapes the tsubame node can host.
  switch (splitmix64(st) % 5) {
    case 0:
      s.executor = "Scan-SP";
      break;
    case 1:
      s.executor = "Scan-MPS";
      s.w = static_cast<int>(pick(st, {2, 4, 8}));
      break;
    case 2:
      s.executor = "Scan-MPS-direct";
      s.w = static_cast<int>(pick(st, {2, 4}));
      break;
    case 3:
      s.executor = "Scan-MP-PC";
      s.y = 2;
      s.v = static_cast<int>(pick(st, {2, 4}));
      break;
    default:
      s.executor = "Scan-MPS-multinode";
      s.m = static_cast<int>(pick(st, {1, 2}));
      s.w = static_cast<int>(pick(st, {4, 8}));
      s.nodes = s.m;
      break;
  }

  // Element space: i32 twice as often (the paper's type); every operator.
  s.dtype = pick(st, {core::DType::kI32,
                                           core::DType::kI32,
                                           core::DType::kF64});
  s.op = pick(st, {core::OpTag::kPlus, core::OpTag::kMax,
                                        core::OpTag::kMin});
  s.kind = (splitmix64(st) % 2 == 0) ? core::ScanKind::kInclusive
                                     : core::ScanKind::kExclusive;

  // Shape: all pool values divide by 16, so every sampled (w, v, m)
  // placement keeps whole per-GPU portions.
  s.n = pick(st, {256, 1024, 4096, 8256, 12288, 65536});
  s.g = pick(st, {1, 2, 3, 4, 8});

  s.pipeline = pick(st, {
                            core::PipelineMode::kAuto,
                            core::PipelineMode::kSync,
                            core::PipelineMode::kOverlap});
  s.waves = static_cast<int>(pick(st, {0, 0, 2, 4}));

  // Fault schedule: ~1/4 healthy, else one or two events plus sometimes a
  // policy override. `at` instants span "from the start" through the
  // makespan scale of the smaller shapes (runs are 1e-5..1e-3 s).
  const int total_gpus = s.nodes * 8;
  const int n_events = static_cast<int>(pick(st, {0, 1, 1, 2}));
  sim::FaultPlan plan;
  for (int e = 0; e < n_events; ++e) {
    sim::FaultEvent ev;
    ev.kind = pick(st, {
                           sim::FaultKind::kTransientTransfer,
                           sim::FaultKind::kTransientTransfer,
                           sim::FaultKind::kLinkDown,
                           sim::FaultKind::kDeviceDown,
                           sim::FaultKind::kDeviceDown,
                           sim::FaultKind::kCorruption,
                           sim::FaultKind::kStraggler});
    const int dev_a = static_cast<int>(splitmix64(st) %
                                       static_cast<std::uint64_t>(total_gpus));
    const int dev_b = static_cast<int>(splitmix64(st) %
                                       static_cast<std::uint64_t>(total_gpus));
    switch (ev.kind) {
      case sim::FaultKind::kTransientTransfer:
        if (splitmix64(st) % 2 == 0) {
          ev.op = static_cast<std::int64_t>(splitmix64(st) % 4);
          ev.count = static_cast<std::int64_t>(1 + splitmix64(st) % 2);
        } else {
          ev.probability = pick(st, {0.1, 0.5});
        }
        break;
      case sim::FaultKind::kLinkDown:
        if (dev_a == dev_b) { ev.kind = sim::FaultKind::kDeviceDown; }
        else { ev.src = dev_a; ev.dst = dev_b; }
        ev.at_seconds = pick(st, {0.0, 0.0, 1e-6, 1e-5});
        if (ev.kind == sim::FaultKind::kDeviceDown) ev.device = dev_a;
        break;
      case sim::FaultKind::kDeviceDown:
        ev.device = dev_a;
        ev.at_seconds =
            pick(st, {0.0, 1e-6, 1e-5, 1e-4});
        break;
      case sim::FaultKind::kCorruption:
        if (splitmix64(st) % 2 == 0) {
          ev.op = static_cast<std::int64_t>(splitmix64(st) % 4);
        } else {
          ev.probability = pick(st, {0.05, 0.2});
        }
        break;
      default:  // straggler
        ev.device = dev_a;
        ev.factor = pick(st, {2.0, 4.0, 8.0});
        break;
    }
    plan.events.push_back(ev);
  }
  if (!plan.events.empty() && splitmix64(st) % 4 == 0) {
    plan.max_retries = static_cast<int>(pick(st, {1, 2, 6}));
  }
  if (!plan.events.empty()) s.faults = sim::to_spec(plan);

  // ~1/8 of scenarios run through the SegmentedScan wrapper, so the
  // packed SegPair path sees the same fault schedules as plain scans.
  // Drawn last: earlier draws stay identical to pre-segmented campaigns.
  s.segmented = splitmix64(st) % 8 == 0;
  return s;
}

std::optional<std::string> check_scenario(const Scenario& s) {
  return check_impl(s, nullptr);
}

Scenario shrink(const Scenario& s,
                const std::function<bool(const Scenario&)>& fails,
                int max_evals) {
  int evals = 0;
  const auto still_fails = [&](const Scenario& c) {
    if (evals >= max_evals) return false;
    ++evals;
    return fails(c);
  };

  Scenario cur = s;
  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;
    const auto try_apply = [&](Scenario cand) {
      if (cand == cur) return false;
      if (!still_fails(cand)) return false;
      cur = std::move(cand);
      progress = true;
      return true;
    };

    // Drop fault events one at a time (to_spec keeps the repro pasteable).
    if (!cur.faults.empty()) {
      const sim::FaultPlan plan = sim::parse_fault_plan(cur.faults);
      for (std::size_t i = 0; i < plan.events.size(); ++i) {
        sim::FaultPlan cand = plan;
        cand.events.erase(cand.events.begin() + static_cast<std::ptrdiff_t>(i));
        Scenario c = cur;
        c.faults = cand.events.empty() ? std::string{} : sim::to_spec(cand);
        if (try_apply(std::move(c))) break;
      }
    }

    // Simplify the pipeline, then the shape, then the element space, then
    // the placement -- most-informative reductions first.
    if (cur.pipeline != core::PipelineMode::kSync) {
      Scenario c = cur;
      c.pipeline = core::PipelineMode::kSync;
      try_apply(std::move(c));
    }
    if (cur.waves != 0) {
      Scenario c = cur;
      c.waves = 0;
      try_apply(std::move(c));
    }
    for (const std::int64_t g : {std::int64_t{4}, std::int64_t{2},
                                 std::int64_t{1}}) {
      if (g < cur.g) {
        Scenario c = cur;
        c.g = g;
        if (try_apply(std::move(c))) break;
      }
    }
    for (const std::int64_t n : {std::int64_t{12288}, std::int64_t{4096},
                                 std::int64_t{1024}, std::int64_t{256}}) {
      if (n < cur.n) {
        Scenario c = cur;
        c.n = n;
        if (try_apply(std::move(c))) break;
      }
    }
    if (cur.dtype != core::DType::kI32) {
      Scenario c = cur;
      c.dtype = core::DType::kI32;
      try_apply(std::move(c));
    }
    if (cur.op != core::OpTag::kPlus) {
      Scenario c = cur;
      c.op = core::OpTag::kPlus;
      try_apply(std::move(c));
    }
    if (cur.kind != core::ScanKind::kInclusive) {
      Scenario c = cur;
      c.kind = core::ScanKind::kInclusive;
      try_apply(std::move(c));
    }
    if (cur.segmented) {
      // A failure that survives without the wrapper is a plain-scan bug.
      Scenario c = cur;
      c.segmented = false;
      try_apply(std::move(c));
    }
    if (cur.w > 2) {
      Scenario c = cur;
      c.w = cur.w / 2;
      try_apply(std::move(c));
    }
    if (cur.v > 2) {
      Scenario c = cur;
      c.v = cur.v / 2;
      try_apply(std::move(c));
    }
    if (cur.m > 1) {
      Scenario c = cur;
      c.m = 1;
      c.nodes = 1;
      try_apply(std::move(c));
    }
  }
  return cur;
}

CampaignResult run_campaign(std::uint64_t seed, int count,
                            std::ostream* log) {
  CampaignResult r;
  for (int i = 0; i < count; ++i) {
    const Scenario s = sample_scenario(seed, i);
    s.faults.empty() ? ++r.healthy : ++r.faulted;
    bool rejected = false;
    const auto v = check_impl(s, &rejected);
    if (rejected) ++r.rejected;
    ++r.total;
    if (v.has_value()) {
      const auto fails = [](const Scenario& c) {
        return check_scenario(c).has_value();
      };
      Violation viol;
      viol.scenario = s;
      viol.what = *v;
      viol.shrunk = shrink(s, fails);
      if (log != nullptr) {
        *log << "[chaos] VIOLATION at index " << i << ": " << viol.what
             << "\n[chaos]   scenario: " << to_string(viol.scenario)
             << "\n[chaos]   repro:    " << to_string(viol.shrunk) << "\n";
      }
      r.violations.push_back(std::move(viol));
    }
    if (log != nullptr && (i + 1) % 50 == 0) {
      *log << "[chaos] " << (i + 1) << "/" << count << " scenarios, "
           << r.violations.size() << " violations, " << r.rejected
           << " typed rejections\n";
    }
  }
  return r;
}

}  // namespace mgs::chaos
